"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.__main__ import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "quotient" in out
        assert "§2.5" in out
        assert "adaptive" in out

    def test_space(self, capsys):
        assert main(["space", "--epsilon", "0.00390625", "--n", "1000"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out
        assert "8.000" in out  # log2(1/2^-8)
        assert "KiB" in out

    def test_space_rejects_bad_epsilon(self):
        with pytest.raises(SystemExit):
            main(["space", "--epsilon", "2.0"])

    def test_monkey(self, capsys):
        assert main(["monkey", "--levels", "10,100,1000", "--bits-per-key", "8"]) == 0
        out = capsys.readouterr().out
        assert "sum of FPRs" in out
        # Monkey's total must print lower than uniform's.
        line = [l for l in out.splitlines() if "sum of FPRs" in l][0]
        monkey_total, uniform_total = map(float, line.split()[-2:])
        assert monkey_total < uniform_total

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


_SMALL = ["--n-keys", "400", "--n-ops", "200", "--memtable-entries", "64"]


class TestStatsCommand:
    def test_table_has_fp_rate_device_and_retry_rows(self, capsys):
        assert main(["stats", *_SMALL, "--fault-rate", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "repro_lsm_filter_fp_rate{level=" in out
        assert "repro_device_reads_total" in out
        assert "repro_device_writes_total" in out
        assert "repro_retry_backoff_seconds" in out
        assert "p50=" in out and "p99=" in out
        assert "YCSB-B" in out

    def test_prometheus_format_round_trips(self, capsys):
        from repro import obs

        assert main(["stats", *_SMALL, "--format", "prometheus"]) == 0
        out = capsys.readouterr().out
        samples = obs.parse_prometheus(out)
        assert "repro_lsm_lookups_total" in samples
        assert "repro_device_reads_total" in samples
        assert samples["repro_lsm_lookups_total"][()] > 0

    def test_json_format_round_trips(self, capsys):
        from repro import obs

        assert main(["stats", *_SMALL, "--format", "json"]) == 0
        out = capsys.readouterr().out
        rebuilt = obs.from_json(out)
        assert "repro_lsm_filter_fp_rate" in rebuilt.snapshot()
        assert rebuilt.snapshot() == obs.from_json(out).snapshot()

    def test_metrics_out_writes_snapshot(self, tmp_path, capsys):
        from repro import obs

        path = tmp_path / "metrics.json"
        assert main(["stats", *_SMALL, "--metrics-out", str(path)]) == 0
        rebuilt = obs.from_json(path.read_text())
        assert rebuilt.get("repro_lsm_lookups_total") is not None

    def test_selftest_passes(self, capsys):
        assert main(["stats", "--selftest"]) == 0
        out = capsys.readouterr().out
        assert "0 failure(s)" in out

    def test_rejects_bad_fault_rate(self):
        with pytest.raises(SystemExit):
            main(["stats", "--fault-rate", "1.5"])


class TestTraceCommand:
    def test_prints_probe_tree(self, capsys):
        assert main(["trace", *_SMALL, "--fault-rate", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "lsm.get" in out
        assert "filter.probe" in out
        assert "device.read" in out
        assert "retry.attempt" in out
        assert "probe trees" in out


class TestServeSimTenantCommand:
    """serve-sim --tenants drives the Bloofi fleet end to end: the exit
    code is the contract (nonzero on any false negative, lost audit key,
    or tree-invariant violation), and the report must surface the
    numbers the tenant-chaos CI job greps for."""

    _BASE = ["serve-sim", "--seed", "3", "--tenants", "32",
             "--n-requests", "180"]

    def test_router_storm_exits_clean(self, capsys):
        assert main([*self._BASE, "--tenant-churn", "6",
                     "--tenant-quota", "300"]) == 0
        out = capsys.readouterr().out
        assert "false negatives: 0" in out
        assert "post-drain audit" in out
        assert "0 invariant failures" in out
        assert "provisioned" in out

    def test_flat_mode_probes_whole_fleet(self, capsys):
        assert main([*self._BASE, "--tenant-mode", "flat"]) == 0
        out = capsys.readouterr().out
        # Flat fan-out pays at least one probe per tenant per lookup.
        line = [l for l in out.splitlines() if "mean probes" in l][0]
        assert float(line.split()[4]) >= 32

    def test_tenants_exclusive_with_shards(self):
        with pytest.raises(SystemExit):
            main([*self._BASE, "--shards", "4"])

    def test_churn_requires_tenants(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--tenant-churn", "5"])

    def test_quota_requires_tenants(self):
        with pytest.raises(SystemExit):
            main(["serve-sim", "--tenant-quota", "100"])
