"""Tests for the query-distribution-aware filters (§2.8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.filters.bloom import BloomFilter
from repro.learned.classifier import LearnedFilter
from repro.learned.stacked import StackedFilter
from repro.workloads.synthetic import disjoint_key_sets


class TestStackedFilter:
    @pytest.fixture(scope="class")
    def setup(self):
        members, negatives = disjoint_key_sets(1000, 5000, seed=51)
        hot = negatives[:500]
        cold = negatives[500:]
        return members, hot, cold

    def test_no_false_negatives(self, setup):
        members, hot, _ = setup
        sf = StackedFilter(members, hot, epsilon=0.05, seed=1)
        assert all(sf.may_contain(k) for k in members)

    def test_hot_negatives_heavily_suppressed(self, setup):
        members, hot, _ = setup
        plain = BloomFilter(len(members), 0.05, seed=1)
        for key in members:
            plain.insert(key)
        sf = StackedFilter(members, hot, epsilon=0.05, seed=1)
        fp_plain = sum(1 for k in hot if plain.may_contain(k))
        fp_stacked = sum(1 for k in hot if sf.may_contain(k))
        assert fp_stacked < max(1, fp_plain)

    def test_cold_negatives_unharmed(self, setup):
        members, hot, cold = setup
        sf = StackedFilter(members, hot, epsilon=0.05, seed=1)
        fp_cold = sum(1 for k in cold if sf.may_contain(k))
        assert fp_cold / len(cold) < 0.1

    def test_rejects_member_in_negatives(self, setup):
        members, hot, _ = setup
        with pytest.raises(ValueError):
            StackedFilter(members, [members[0]], seed=1)

    def test_empty_hot_list(self, setup):
        members, _, cold = setup
        sf = StackedFilter(members, [], epsilon=0.05, seed=1)
        assert all(sf.may_contain(k) for k in members)
        assert sf.layer_sizes[1] == 0

    def test_deeper_stacks_decrease_hot_fpr(self, setup):
        """§2.8: the hierarchy 'exponentially decreases' the FPR on the
        frequently queried non-keys as layers are added."""
        members, hot, _ = setup
        rates = []
        for depth in (1, 3, 5):
            sf = StackedFilter(
                members, hot, epsilon=0.1, negative_epsilon=0.1,
                n_layers=depth, seed=3,
            )
            assert all(sf.may_contain(k) for k in members)  # never a FN
            rates.append(sum(sf.may_contain(k) for k in hot) / len(hot))
        assert rates[0] > rates[1] >= rates[2]
        assert rates[2] <= rates[0] * 0.25

    def test_even_layer_count_rejected(self, setup):
        members, hot, _ = setup
        with pytest.raises(ValueError):
            StackedFilter(members, hot, n_layers=2)


class TestLearnedFilter:
    UNIVERSE = 1 << 32

    def _clustered_keys(self, n, seed):
        """Keys concentrated in a few dense clusters (the learnable case)."""
        rng = np.random.default_rng(seed)
        centers = rng.integers(0, self.UNIVERSE, size=8)
        keys = set()
        while len(keys) < n:
            center = int(centers[int(rng.integers(8))])
            keys.add(int(min(self.UNIVERSE - 1, max(0, center + rng.integers(-500, 500)))))
        return sorted(keys)

    def test_no_false_negatives(self):
        keys = self._clustered_keys(2000, seed=2)
        lf = LearnedFilter(keys, universe=self.UNIVERSE, seed=3)
        assert all(lf.may_contain(k) for k in keys)

    def test_clustered_keys_learned(self):
        keys = self._clustered_keys(2000, seed=2)
        negatives = list(np.random.default_rng(5).integers(0, self.UNIVERSE, 3000))
        negatives = [int(k) for k in negatives if k not in set(keys)]
        lf = LearnedFilter(
            keys, universe=self.UNIVERSE, sample_negatives=negatives[:1000], seed=3
        )
        assert lf.model_coverage > 0.5
        fps = sum(1 for k in negatives[1000:] if lf.may_contain(k))
        assert fps / len(negatives[1000:]) < 0.05

    def test_space_beats_bloom_on_clustered(self):
        keys = self._clustered_keys(4000, seed=6)
        lf = LearnedFilter(keys, universe=self.UNIVERSE, epsilon=0.01, seed=3)
        bloom = BloomFilter(len(keys), 0.01, seed=3)
        assert lf.size_in_bits < bloom.capacity * bloom.size_in_bits / len(keys) * 1.0
        assert lf.size_in_bits < bloom.size_in_bits

    def test_uniform_keys_degrade_gracefully(self):
        members, negatives = disjoint_key_sets(2000, 3000, seed=7)
        universe = 1 << 48
        lf = LearnedFilter(members, universe=universe, seed=8)
        assert all(lf.may_contain(k) for k in members)
        fps = sum(1 for k in negatives if lf.may_contain(k))
        assert fps / len(negatives) < 0.05

    def test_out_of_universe_query_false(self):
        lf = LearnedFilter([1, 2], universe=100, seed=9)
        assert not lf.may_contain(1000)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            LearnedFilter([200], universe=100)
        with pytest.raises(ValueError):
            LearnedFilter([1], universe=100, threshold=0.0)
