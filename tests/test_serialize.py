"""Round-trip, malformed-input, and corruption-detection tests for
filter serialization (``BBF1`` legacy and checksummed ``BBF2`` frames)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ChecksumError
from repro.core.serialize import dumps, frame, loads, unframe, verify
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter


def _assert_equivalent(original, restored, members, probes):
    assert len(restored) == len(original)
    assert restored.size_in_bits == original.size_in_bits
    for key in members:
        assert restored.may_contain(key)
    for key in probes:
        assert restored.may_contain(key) == original.may_contain(key)


class TestRoundTrips:
    def test_bloom(self, small_keys):
        members, negatives = small_keys
        bloom = BloomFilter(len(members), 0.01, seed=41)
        for key in members:
            bloom.insert(key)
        restored = loads(dumps(bloom))
        _assert_equivalent(bloom, restored, members, negatives[:500])

    def test_quotient(self, small_keys):
        members, negatives = small_keys
        qf = QuotientFilter.for_capacity(len(members), 0.01, seed=42)
        for key in members:
            qf.insert(key)
        restored = loads(dumps(qf))
        _assert_equivalent(qf, restored, members, negatives[:500])
        # The restored filter remains fully functional (delete works).
        restored.delete(members[0])
        assert not restored.may_contain(members[0])

    def test_cuckoo(self, small_keys):
        members, negatives = small_keys
        cf = CuckooFilter.for_capacity(len(members), 0.01, seed=43)
        for key in members:
            cf.insert(key)
        restored = loads(dumps(cf))
        _assert_equivalent(cf, restored, members, negatives[:500])
        restored.insert("new-key-after-load")
        assert restored.may_contain("new-key-after-load")

    def test_xor(self, small_keys):
        members, negatives = small_keys
        xf = XorFilter(members, 10, seed=44)
        restored = loads(dumps(xf))
        _assert_equivalent(xf, restored, members, negatives[:500])

    def test_ribbon(self, small_keys):
        members, negatives = small_keys
        rf = RibbonFilter(members, 10, seed=45)
        restored = loads(dumps(rf))
        _assert_equivalent(rf, restored, members, negatives[:500])


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="blob"):
            loads(b"NOPE" + b"\x00" * 32)

    def test_unsupported_type(self):
        from repro.counting.spectral import SpectralBloomFilter

        with pytest.raises(TypeError):
            dumps(SpectralBloomFilter(10, 0.01))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            loads(b"BBF1" + bytes([99]) + b"\x00" * 32)

    def test_empty_input(self):
        with pytest.raises(ValueError, match="too short"):
            loads(b"")

    def test_magic_only(self):
        with pytest.raises(ValueError):
            loads(b"BBF1")
        with pytest.raises(ChecksumError, match="truncated"):
            loads(b"BBF2")

    def test_short_input(self):
        with pytest.raises(ValueError, match="too short"):
            loads(b"BB")

    def test_non_bytes_input(self):
        with pytest.raises(TypeError, match="bytes"):
            loads(42)

    def test_v2_truncated_frame_header(self):
        with pytest.raises(ChecksumError, match="truncated"):
            loads(b"BBF2" + b"\x01\x02\x03")

    def test_v2_length_mismatch(self):
        blob = bytearray(dumps(BloomFilter(100, 0.01)))
        with pytest.raises(ChecksumError, match="length mismatch"):
            loads(bytes(blob[:-4]))

    def test_v2_trailing_garbage(self):
        blob = dumps(BloomFilter(100, 0.01))
        with pytest.raises(ChecksumError, match="length mismatch"):
            loads(blob + b"\x00\x00")

    def test_v2_payload_corruption(self):
        blob = bytearray(dumps(BloomFilter(100, 0.01)))
        blob[-1] ^= 0x40
        with pytest.raises(ChecksumError, match="checksum"):
            loads(bytes(blob))

    def test_v2_unknown_kind_inside_valid_frame(self):
        with pytest.raises(ValueError, match="kind"):
            loads(b"BBF2" + frame(bytes([99]) + b"\x00" * 16))

    def test_v1_truncated_header(self):
        blob = dumps(BloomFilter(100, 0.01), version=1)
        with pytest.raises(ValueError, match="truncated"):
            loads(blob[:8])

    def test_v1_trailing_garbage(self):
        blob = dumps(BloomFilter(100, 0.01), version=1)
        with pytest.raises(ValueError, match="payload"):
            loads(blob + b"\x00" * 8)

    def test_v1_ragged_payload(self):
        blob = dumps(BloomFilter(100, 0.01), version=1)
        with pytest.raises(ValueError, match="64-bit"):
            loads(blob + b"\x00" * 3)

    def test_unsupported_version(self):
        with pytest.raises(ValueError, match="version"):
            dumps(BloomFilter(100, 0.01), version=3)


class TestV1Compat:
    """Legacy unchecksummed blobs must keep loading."""

    def test_v1_round_trip(self, small_keys):
        members, negatives = small_keys
        bloom = BloomFilter(len(members), 0.01, seed=7)
        for key in members:
            bloom.insert(key)
        blob = dumps(bloom, version=1)
        assert blob[:4] == b"BBF1"
        restored = loads(blob)
        _assert_equivalent(bloom, restored, members, negatives[:200])

    def test_v2_is_default_and_framed(self):
        bloom = BloomFilter(100, 0.01)
        blob = dumps(bloom)
        assert blob[:4] == b"BBF2"
        # The framed body is byte-identical to the v1 body.
        assert unframe(blob[4:]) == dumps(bloom, version=1)[4:]

    def test_v2_costs_eight_bytes(self):
        bloom = BloomFilter(100, 0.01)
        assert len(dumps(bloom, version=2)) == len(dumps(bloom, version=1)) + 8


class TestVerify:
    def test_intact_blobs_verify(self, small_keys):
        members, _ = small_keys
        bloom = BloomFilter(len(members), 0.01, seed=7)
        for key in members:
            bloom.insert(key)
        assert verify(dumps(bloom, version=2))
        assert verify(dumps(bloom, version=1))

    def test_corrupt_v2_fails_verify(self):
        blob = bytearray(dumps(BloomFilter(100, 0.01)))
        blob[20] ^= 0x01
        assert not verify(bytes(blob))

    def test_junk_fails_verify(self):
        assert not verify(b"")
        assert not verify(b"BBF2")
        assert not verify(b"NOPE" + b"\x00" * 64)
        assert not verify(None)

    def test_verify_is_cheaper_than_loads(self):
        # verify() must not construct a filter; a frame around an unknown
        # kind that loads() rejects is still checksum-valid vs not.
        good_frame_bad_kind = b"BBF2" + frame(bytes([99]) + b"\x00" * 16)
        assert not verify(good_frame_bad_kind)  # unknown kind


def _build_all(members):
    # Dynamic filters get generous headroom: at tiny sizes a cuckoo table
    # sized exactly for n keys can overflow, which is not what these
    # serialization tests are probing.
    capacity = max(64, 2 * len(members))
    filters = [
        BloomFilter(capacity, 0.01, seed=11),
        QuotientFilter.for_capacity(capacity, 0.01, seed=12),
        CuckooFilter.for_capacity(capacity, 0.01, seed=13),
    ]
    for filt in filters:
        for key in members:
            filt.insert(key)
    filters.append(XorFilter(members, 10, seed=14))
    filters.append(RibbonFilter(members, 10, seed=15))
    return filters


class TestProperties:
    """Hypothesis: round-trips preserve membership; mutations never pass
    silently on ``BBF2``."""

    @settings(max_examples=25, deadline=None)
    @given(
        keys=st.lists(
            st.integers(min_value=0, max_value=2**48), min_size=8, max_size=64,
            unique=True,
        ),
        version=st.sampled_from([1, 2]),
    )
    def test_round_trip_membership(self, keys, version):
        for filt in _build_all(keys):
            restored = loads(dumps(filt, version=version))
            for key in keys:
                assert restored.may_contain(key), type(filt).__name__

    @settings(max_examples=200, deadline=None)
    @given(
        pos=st.integers(min_value=0),
        delta=st.integers(min_value=1, max_value=255),
        data=st.data(),
    )
    def test_single_byte_mutation_never_silent(self, pos, delta, data):
        """Any single-byte change to a BBF2 blob raises ChecksumError or a
        bad-magic/bad-frame ValueError — never a silently different filter."""
        blob = bytearray(_MUTATION_BLOBS[data.draw(st.integers(0, len(_MUTATION_BLOBS) - 1))])
        blob[pos % len(blob)] ^= delta
        mutated = bytes(blob)
        with pytest.raises(ValueError):
            loads(mutated)
        assert not verify(mutated) or mutated[:4] == b"BBF1"


_MUTATION_KEYS = list(range(100, 160))
_MUTATION_BLOBS = [dumps(f, version=2) for f in _build_all(_MUTATION_KEYS)]
