"""Round-trip tests for filter serialization."""

from __future__ import annotations

import pytest

from repro.core.serialize import dumps, loads
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter


def _assert_equivalent(original, restored, members, probes):
    assert len(restored) == len(original)
    assert restored.size_in_bits == original.size_in_bits
    for key in members:
        assert restored.may_contain(key)
    for key in probes:
        assert restored.may_contain(key) == original.may_contain(key)


class TestRoundTrips:
    def test_bloom(self, small_keys):
        members, negatives = small_keys
        bloom = BloomFilter(len(members), 0.01, seed=41)
        for key in members:
            bloom.insert(key)
        restored = loads(dumps(bloom))
        _assert_equivalent(bloom, restored, members, negatives[:500])

    def test_quotient(self, small_keys):
        members, negatives = small_keys
        qf = QuotientFilter.for_capacity(len(members), 0.01, seed=42)
        for key in members:
            qf.insert(key)
        restored = loads(dumps(qf))
        _assert_equivalent(qf, restored, members, negatives[:500])
        # The restored filter remains fully functional (delete works).
        restored.delete(members[0])
        assert not restored.may_contain(members[0])

    def test_cuckoo(self, small_keys):
        members, negatives = small_keys
        cf = CuckooFilter.for_capacity(len(members), 0.01, seed=43)
        for key in members:
            cf.insert(key)
        restored = loads(dumps(cf))
        _assert_equivalent(cf, restored, members, negatives[:500])
        restored.insert("new-key-after-load")
        assert restored.may_contain("new-key-after-load")

    def test_xor(self, small_keys):
        members, negatives = small_keys
        xf = XorFilter(members, 10, seed=44)
        restored = loads(dumps(xf))
        _assert_equivalent(xf, restored, members, negatives[:500])

    def test_ribbon(self, small_keys):
        members, negatives = small_keys
        rf = RibbonFilter(members, 10, seed=45)
        restored = loads(dumps(rf))
        _assert_equivalent(rf, restored, members, negatives[:500])


class TestErrors:
    def test_bad_magic(self):
        with pytest.raises(ValueError, match="blob"):
            loads(b"NOPE" + b"\x00" * 32)

    def test_unsupported_type(self):
        from repro.counting.spectral import SpectralBloomFilter

        with pytest.raises(TypeError):
            dumps(SpectralBloomFilter(10, 0.01))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            loads(b"BBF1" + bytes([99]) + b"\x00" * 32)
