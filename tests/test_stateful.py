"""Hypothesis rule-based state machines: long random operation sequences
checked against exact reference models.

These complement the per-module tests: a state machine explores orderings
(insert/delete/query/flush interleavings) that hand-written tests miss.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.apps.lsm import LSMConfig, LSMTree
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter

KEYS = st.integers(min_value=0, max_value=400)


class QuotientFilterMachine(RuleBasedStateMachine):
    """QF vs an exact fingerprint multiset (same collision behaviour)."""

    def __init__(self):
        super().__init__()
        self.qf = QuotientFilter(6, 5, seed=3)
        self.model: dict[int, int] = {}  # fingerprint -> multiplicity

    def _fp(self, key: int) -> int:
        return self.qf._fingerprint(key)

    @rule(key=KEYS)
    def insert(self, key):
        if len(self.qf) >= self.qf.capacity:
            return
        self.qf.insert(key)
        fp = self._fp(key)
        self.model[fp] = self.model.get(fp, 0) + 1

    @rule(key=KEYS)
    def delete_if_present(self, key):
        fp = self._fp(key)
        if self.model.get(fp, 0) > 0:
            self.qf.delete(key)
            self.model[fp] -= 1
            if self.model[fp] == 0:
                del self.model[fp]

    @rule(key=KEYS)
    def query_matches_model(self, key):
        assert self.qf.may_contain(key) == (self._fp(key) in self.model)

    @invariant()
    def count_matches(self):
        assert len(self.qf) == sum(self.model.values())

    @invariant()
    def stored_fingerprints_match(self):
        stored = sorted(self.qf.iter_fingerprints())
        expected = sorted(f for f, c in self.model.items() for _ in range(c))
        assert stored == expected


class CuckooFilterMachine(RuleBasedStateMachine):
    """Cuckoo filter vs a key multiset: membership is never lost."""

    def __init__(self):
        super().__init__()
        self.cf = CuckooFilter(64, 14, seed=5)
        self.members: dict[int, int] = {}

    @rule(key=KEYS)
    def insert(self, key):
        if len(self.cf) >= int(self.cf.n_slots * 0.9):
            return
        # A key fits in at most two buckets, so the structure can hold at
        # most 2*bucket_size copies of it; further duplicates are a legal
        # FilterFullError, not a bug.
        if self.members.get(key, 0) >= 2 * self.cf.bucket_size:
            return
        self.cf.insert(key)
        self.members[key] = self.members.get(key, 0) + 1

    @rule(key=KEYS)
    def delete_if_present(self, key):
        if self.members.get(key, 0) > 0:
            self.cf.delete(key)
            self.members[key] -= 1
            if self.members[key] == 0:
                del self.members[key]

    @invariant()
    def no_false_negatives(self):
        for key in self.members:
            assert self.cf.may_contain(key)

    @invariant()
    def count_matches(self):
        assert len(self.cf) == sum(self.members.values())


class LSMMachine(RuleBasedStateMachine):
    """LSM-tree vs a plain dict, across puts/deletes/flushes/range scans."""

    def __init__(self):
        super().__init__()
        self.tree = LSMTree(
            LSMConfig(compaction="tiering", memtable_entries=8, size_ratio=3)
        )
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=st.integers(min_value=0, max_value=1000))
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.tree.flush()

    @rule(key=KEYS)
    def get_matches_model(self, key):
        assert self.tree.get(key, default=None) == self.model.get(key)

    @rule(lo=KEYS, width=st.integers(min_value=0, max_value=50))
    def range_matches_model(self, lo, width):
        hi = lo + width
        expected = {k: v for k, v in self.model.items() if lo <= k <= hi}
        assert self.tree.range_query(lo, hi) == dict(sorted(expected.items()))


TestQuotientFilterMachine = QuotientFilterMachine.TestCase
TestQuotientFilterMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestCuckooFilterMachine = CuckooFilterMachine.TestCase
TestCuckooFilterMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestLSMMachine = LSMMachine.TestCase
TestLSMMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
