"""Hypothesis rule-based state machines: long random operation sequences
checked against exact reference models.

These complement the per-module tests: a state machine explores orderings
(insert/delete/query/flush interleavings) that hand-written tests miss.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.apps.lsm import LSMConfig, LSMTree
from repro.core.bloofi import BloofiConfig, BloofiTree
from repro.filters.cuckoo import CuckooFilter
from repro.filters.quotient import QuotientFilter

KEYS = st.integers(min_value=0, max_value=400)


class QuotientFilterMachine(RuleBasedStateMachine):
    """QF vs an exact fingerprint multiset (same collision behaviour)."""

    def __init__(self):
        super().__init__()
        self.qf = QuotientFilter(6, 5, seed=3)
        self.model: dict[int, int] = {}  # fingerprint -> multiplicity

    def _fp(self, key: int) -> int:
        return self.qf._fingerprint(key)

    @rule(key=KEYS)
    def insert(self, key):
        if len(self.qf) >= self.qf.capacity:
            return
        self.qf.insert(key)
        fp = self._fp(key)
        self.model[fp] = self.model.get(fp, 0) + 1

    @rule(key=KEYS)
    def delete_if_present(self, key):
        fp = self._fp(key)
        if self.model.get(fp, 0) > 0:
            self.qf.delete(key)
            self.model[fp] -= 1
            if self.model[fp] == 0:
                del self.model[fp]

    @rule(key=KEYS)
    def query_matches_model(self, key):
        assert self.qf.may_contain(key) == (self._fp(key) in self.model)

    @invariant()
    def count_matches(self):
        assert len(self.qf) == sum(self.model.values())

    @invariant()
    def stored_fingerprints_match(self):
        stored = sorted(self.qf.iter_fingerprints())
        expected = sorted(f for f, c in self.model.items() for _ in range(c))
        assert stored == expected


class CuckooFilterMachine(RuleBasedStateMachine):
    """Cuckoo filter vs a key multiset: membership is never lost."""

    def __init__(self):
        super().__init__()
        self.cf = CuckooFilter(64, 14, seed=5)
        self.members: dict[int, int] = {}

    @rule(key=KEYS)
    def insert(self, key):
        if len(self.cf) >= int(self.cf.n_slots * 0.9):
            return
        # A key fits in at most two buckets, so the structure can hold at
        # most 2*bucket_size copies of it; further duplicates are a legal
        # FilterFullError, not a bug.
        if self.members.get(key, 0) >= 2 * self.cf.bucket_size:
            return
        self.cf.insert(key)
        self.members[key] = self.members.get(key, 0) + 1

    @rule(key=KEYS)
    def delete_if_present(self, key):
        if self.members.get(key, 0) > 0:
            self.cf.delete(key)
            self.members[key] -= 1
            if self.members[key] == 0:
                del self.members[key]

    @invariant()
    def no_false_negatives(self):
        for key in self.members:
            assert self.cf.may_contain(key)

    @invariant()
    def count_matches(self):
        assert len(self.cf) == sum(self.members.values())


class LSMMachine(RuleBasedStateMachine):
    """LSM-tree vs a plain dict, across puts/deletes/flushes/range scans."""

    def __init__(self):
        super().__init__()
        self.tree = LSMTree(
            LSMConfig(compaction="tiering", memtable_entries=8, size_ratio=3)
        )
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=st.integers(min_value=0, max_value=1000))
    def put(self, key, value):
        self.tree.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.tree.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.tree.flush()

    @rule(key=KEYS)
    def get_matches_model(self, key):
        assert self.tree.get(key, default=None) == self.model.get(key)

    @rule(lo=KEYS, width=st.integers(min_value=0, max_value=50))
    def range_matches_model(self, lo, width):
        hi = lo + width
        expected = {k: v for k, v in self.model.items() if lo <= k <= hi}
        assert self.tree.range_query(lo, hi) == dict(sorted(expected.items()))


class BloofiMachine(RuleBasedStateMachine):
    """Bloofi tree maintenance vs an exact tenant->keys model.

    Random interleavings of add-tenant / remove-tenant / insert / query
    / full re-OR, with the two fleet-safety invariants audited after
    *every* step: a key the model holds is never answered falsely ABSENT
    (its tenant is always in the candidate set), and every interior OR
    stays a bitwise superset of its descendant leaves — the property
    that makes pruning safe.  Splits, merges, root growth/collapse, and
    lazy-removal staleness all happen along the way; none may bend
    either invariant.
    """

    def __init__(self):
        super().__init__()
        # Tight fanout so splits/merges fire within hypothesis-sized
        # runs; short reor_interval so automatic re-ORs interleave too.
        self.tree = BloofiTree(BloofiConfig(
            leaf_capacity=32, epsilon=0.05, seed=5, max_fanout=4,
            reor_interval=6,
        ))
        self.model: dict[int, set[int]] = {}
        self.next_tenant = 0

    @rule()
    def add_tenant(self):
        tenant = self.next_tenant
        self.next_tenant += 1
        self.tree.add_tenant(tenant)
        self.model[tenant] = set()

    @rule(data=st.data())
    def remove_tenant(self, data):
        if not self.model:
            return
        tenant = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.remove_tenant(tenant)
        del self.model[tenant]

    @rule(key=KEYS, data=st.data())
    def insert(self, key, data):
        if not self.model:
            return
        tenant = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.insert(tenant, key)
        self.model[tenant].add(key)

    @rule()
    def reor(self):
        self.tree.reor()
        assert self.tree.stale_fraction() == 0.0

    @rule(key=KEYS)
    def query_includes_every_holder(self, key):
        candidates = set(self.tree.candidates(key).tenants)
        for tenant, keys in self.model.items():
            if key in keys:
                assert tenant in candidates, (
                    f"false ABSENT: tenant {tenant} holds {key} but was pruned"
                )

    @invariant()
    def interior_ors_superset_of_leaves(self):
        # check_invariants() includes the superset audit at every node,
        # leaf-depth uniformity, fanout bounds, and leaf-count caching.
        assert self.tree.check_invariants() == []

    @invariant()
    def no_false_absent_for_any_model_key(self):
        for tenant, keys in self.model.items():
            for key in keys:
                assert tenant in self.tree.candidates(key).tenants


TestQuotientFilterMachine = QuotientFilterMachine.TestCase
TestQuotientFilterMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestCuckooFilterMachine = CuckooFilterMachine.TestCase
TestCuckooFilterMachine.settings = settings(
    max_examples=30, stateful_step_count=40, deadline=None
)
TestLSMMachine = LSMMachine.TestCase
TestLSMMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestBloofiMachine = BloofiMachine.TestCase
TestBloofiMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
