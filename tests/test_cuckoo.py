"""Tests for the cuckoo filter."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DeletionError, FilterFullError
from repro.filters.cuckoo import CuckooFilter
from tests.conftest import measured_fpr


class TestCuckooBasics:
    def test_insert_query_delete(self):
        cf = CuckooFilter(64, 12, seed=1)
        cf.insert("hello")
        assert cf.may_contain("hello")
        cf.delete("hello")
        assert not cf.may_contain("hello")
        assert len(cf) == 0

    def test_no_false_negatives(self, small_keys):
        members, _ = small_keys
        cf = CuckooFilter.for_capacity(len(members), 0.01, seed=2)
        for key in members:
            cf.insert(key)
        assert all(cf.may_contain(k) for k in members)

    def test_fpr_near_target(self, medium_keys):
        members, negatives = medium_keys
        cf = CuckooFilter.for_capacity(len(members), 0.01, seed=3)
        for key in members:
            cf.insert(key)
        assert measured_fpr(cf, negatives) <= 0.02

    def test_high_load_achievable(self):
        # 4-way cuckoo tables reach ~95% occupancy.
        cf = CuckooFilter(256, 12, seed=4)
        target = int(cf.n_slots * 0.94)
        for i in range(target):
            cf.insert(i)
        assert cf.load_factor >= 0.93

    def test_delete_unknown_raises(self):
        cf = CuckooFilter(64, 12, seed=5)
        cf.insert("a")
        with pytest.raises(DeletionError):
            cf.delete("b")

    def test_alt_index_is_involution(self):
        cf = CuckooFilter(1024, 12, seed=6)
        for key in range(100):
            fp, i1, i2 = cf._candidates(key)
            assert cf._alt_index(i2, fp) == i1

    def test_kick_failure_keeps_all_keys_queryable(self):
        # Overfill a tiny table until insertion fails; even then no inserted
        # key may be lost (the victim cache holds the homeless fingerprint).
        cf = CuckooFilter(4, 10, bucket_size=2, seed=7)
        inserted = []
        with pytest.raises(FilterFullError):
            for i in range(1000):
                cf.insert(i)
                inserted.append(i)
        # The key that raised is also retained (it entered the kick chain).
        for key in inserted + [len(inserted)]:
            assert cf.may_contain(key)
        with pytest.raises(FilterFullError):
            cf.insert("post-full insert")

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            CuckooFilter(0, 8)
        with pytest.raises(ValueError):
            CuckooFilter(8, 0)
        with pytest.raises(ValueError):
            CuckooFilter(8, 8, bucket_size=0)
        with pytest.raises(ValueError):
            CuckooFilter.for_capacity(10, 0)

    def test_bucket_size_ablation_constructs(self):
        for b in (2, 4, 8):
            cf = CuckooFilter.for_capacity(100, 0.01, bucket_size=b)
            cf.insert("x")
            assert cf.may_contain("x")

    def test_size_in_bits(self):
        cf = CuckooFilter(16, 9, bucket_size=4)
        assert cf.size_in_bits == cf.n_buckets * 4 * 9


class TestCuckooModel:
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_insert_delete_round_trip(self, keys):
        cf = CuckooFilter(128, 14, seed=8)
        for key in keys:
            cf.insert(key)
        for key in keys:
            assert cf.may_contain(key)
        for key in keys:
            cf.delete(key)
        assert len(cf) == 0
