"""Tests for the LSM-tree simulator (§3.1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lsm import LSMConfig, LSMTree
from repro.rangefilters.prefix_bloom import PrefixBloomFilter


def _fill(tree: LSMTree, n: int, seed: int = 0) -> dict[int, int]:
    rng = np.random.default_rng(seed)
    keys = rng.choice(1 << 30, size=n, replace=False)
    data = {}
    for i, key in enumerate(int(k) for k in keys):
        tree.put(key, i)
        data[key] = i
    return data


class TestCorrectness:
    @pytest.mark.parametrize("compaction", ["leveling", "tiering", "lazy-leveling"])
    def test_get_returns_latest_value(self, compaction):
        tree = LSMTree(LSMConfig(compaction=compaction, memtable_entries=32))
        data = _fill(tree, 800, seed=1)
        for key, value in list(data.items())[::13]:
            assert tree.get(key) == value

    def test_updates_win(self):
        tree = LSMTree(LSMConfig(memtable_entries=16))
        for round_ in range(3):
            for key in range(100):
                tree.put(key, (round_, key))
        for key in range(0, 100, 7):
            assert tree.get(key) == (2, key)

    def test_missing_key_default(self):
        tree = LSMTree(LSMConfig(memtable_entries=16))
        _fill(tree, 100, seed=2)
        assert tree.get(-5, default="nope") == "nope"

    def test_range_query_correct(self):
        tree = LSMTree(
            LSMConfig(
                memtable_entries=32,
                range_filter_factory=lambda keys: PrefixBloomFilter(
                    keys, key_bits=30, prefix_bits=20, seed=3
                ),
            )
        )
        data = _fill(tree, 500, seed=3)
        lo, hi = 1 << 28, (1 << 28) + (1 << 26)
        expected = {k: v for k, v in data.items() if lo <= k <= hi}
        assert tree.range_query(lo, hi) == dict(sorted(expected.items()))

    def test_range_query_rejects_inverted(self):
        tree = LSMTree()
        with pytest.raises(ValueError):
            tree.range_query(5, 1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LSMConfig(size_ratio=1)
        with pytest.raises(ValueError):
            LSMConfig(compaction="magic")
        with pytest.raises(ValueError):
            LSMConfig(filter_policy="psychic")


class TestStructure:
    def test_leveling_has_one_run_per_level(self):
        tree = LSMTree(LSMConfig(compaction="leveling", memtable_entries=16, size_ratio=4))
        _fill(tree, 2000, seed=4)
        for level in tree._levels:
            assert len(level) <= 1

    def test_tiering_bounded_runs_per_level(self):
        cfg = LSMConfig(compaction="tiering", memtable_entries=16, size_ratio=4)
        tree = LSMTree(cfg)
        _fill(tree, 2000, seed=5)
        for level in tree._levels:
            assert len(level) < cfg.size_ratio + 1

    def test_write_amp_leveling_exceeds_tiering(self):
        results = {}
        for compaction in ("leveling", "tiering"):
            tree = LSMTree(
                LSMConfig(compaction=compaction, memtable_entries=16, size_ratio=4)
            )
            _fill(tree, 4000, seed=6)
            results[compaction] = tree.write_amplification
        assert results["leveling"] > results["tiering"]

    def test_lazy_leveling_between(self):
        results = {}
        for compaction in ("leveling", "tiering", "lazy-leveling"):
            tree = LSMTree(
                LSMConfig(compaction=compaction, memtable_entries=16, size_ratio=4)
            )
            _fill(tree, 4000, seed=6)
            results[compaction] = tree.write_amplification
        assert results["tiering"] <= results["lazy-leveling"] <= results["leveling"]


class TestFilters:
    def _negative_lookup_ios(self, filter_policy, n=3000, queries=2000, eps=0.05):
        tree = LSMTree(
            LSMConfig(
                compaction="tiering",
                memtable_entries=32,
                size_ratio=4,
                filter_policy=filter_policy,
                largest_level_epsilon=eps,
            )
        )
        _fill(tree, n, seed=7)
        rng = np.random.default_rng(8)
        for q in rng.integers(1 << 40, 1 << 41, size=queries):
            tree.get(int(q))
        return tree

    def test_filters_eliminate_most_negative_ios(self):
        none = self._negative_lookup_ios("none")
        monkey = self._negative_lookup_ios("monkey")
        assert monkey.stats.wasted_lookup_ios < 0.2 * none.stats.wasted_lookup_ios

    def test_monkey_beats_uniform_wasted_ios(self):
        uniform = self._negative_lookup_ios("uniform")
        monkey = self._negative_lookup_ios("monkey")
        assert monkey.sum_of_fprs() < uniform.sum_of_fprs()
        assert (
            monkey.stats.wasted_lookup_ios <= uniform.stats.wasted_lookup_ios
        )

    def test_no_filter_reads_every_run_worst_case(self):
        tree = self._negative_lookup_ios("none", queries=100)
        assert tree.stats.wasted_lookup_ios == tree.stats.lookup_ios

    def test_maplet_mode_single_probe(self):
        tree = LSMTree(
            LSMConfig(
                compaction="tiering",
                memtable_entries=32,
                size_ratio=4,
                use_maplet=True,
                maplet_capacity=1 << 14,
            )
        )
        data = _fill(tree, 2000, seed=9)
        for key, value in list(data.items())[::17]:
            assert tree.get(key) == value
        # Positive lookups probe ~1 run (plus rare fingerprint collisions).
        assert tree.stats.ios_per_lookup < 1.5

    def test_range_filter_cuts_range_ios(self):
        def factory(keys):
            return PrefixBloomFilter(keys, key_bits=30, prefix_bits=22, seed=10)

        with_rf = LSMTree(
            LSMConfig(memtable_entries=32, compaction="tiering", size_ratio=4,
                      range_filter_factory=factory)
        )
        without_rf = LSMTree(
            LSMConfig(memtable_entries=32, compaction="tiering", size_ratio=4)
        )
        _fill(with_rf, 2000, seed=11)
        _fill(without_rf, 2000, seed=11)
        rng = np.random.default_rng(12)
        for lo in rng.integers(0, (1 << 30) - 256, size=300):
            with_rf.range_query(int(lo), int(lo) + 255)
            without_rf.range_query(int(lo), int(lo) + 255)
        assert with_rf.stats.range_ios < without_rf.stats.range_ios
