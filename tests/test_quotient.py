"""Quotient filter tests: invariants, deletes, and a model-based fuzz.

The quotient filter is the foundation for the counting, adaptive and
expandable variants, so it gets the heaviest verification: a hypothesis
state-machine-style test compares it against an exact multiset of
fingerprints (the filter must behave *identically* to the multiset at the
fingerprint level — false positives only ever come from fingerprint
collisions, which the model shares).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DeletionError, FilterFullError
from repro.filters.quotient import QuotientFilter
from tests.conftest import measured_fpr


class TestBasics:
    def test_insert_query(self):
        qf = QuotientFilter(8, 8, seed=1)
        for key in ["a", "b", "c", 42, b"xyz"]:
            qf.insert(key)
        for key in ["a", "b", "c", 42, b"xyz"]:
            assert qf.may_contain(key)
        assert len(qf) == 5

    def test_no_false_negatives_bulk(self, small_keys):
        members, _ = small_keys
        qf = QuotientFilter.for_capacity(len(members), 0.01, seed=3)
        for key in members:
            qf.insert(key)
        assert all(qf.may_contain(k) for k in members)

    def test_fpr_near_target(self, medium_keys):
        members, negatives = medium_keys
        qf = QuotientFilter.for_capacity(len(members), 2**-8, seed=5)
        for key in members:
            qf.insert(key)
        fpr = measured_fpr(qf, negatives)
        assert fpr <= 3 * 2**-8  # generous: binomial noise at 20k queries

    def test_delete_removes(self):
        qf = QuotientFilter(8, 10, seed=2)
        qf.insert("x")
        assert qf.may_contain("x")
        qf.delete("x")
        assert not qf.may_contain("x")
        assert len(qf) == 0

    def test_delete_unknown_raises(self):
        qf = QuotientFilter(8, 10, seed=2)
        qf.insert("x")
        with pytest.raises(DeletionError):
            qf.delete("never-inserted")

    def test_duplicate_inserts_need_matching_deletes(self):
        qf = QuotientFilter(8, 10, seed=2)
        qf.insert("dup")
        qf.insert("dup")
        qf.delete("dup")
        assert qf.may_contain("dup")
        qf.delete("dup")
        assert not qf.may_contain("dup")

    def test_full_raises(self):
        qf = QuotientFilter(4, 8, seed=2)  # 16 slots, capacity 14
        for i in range(qf.capacity):
            qf.insert(i)
        with pytest.raises(FilterFullError):
            qf.insert("one-too-many")

    def test_size_formula(self):
        qf = QuotientFilter(10, 7)
        assert qf.size_in_bits == 1024 * (7 + 3)

    def test_for_capacity_sizing(self):
        qf = QuotientFilter.for_capacity(1000, 0.01)
        assert qf.capacity >= 1000
        assert qf.remainder_bits == 7

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            QuotientFilter(0, 8)
        with pytest.raises(ValueError):
            QuotientFilter(8, 0)
        with pytest.raises(ValueError):
            QuotientFilter.for_capacity(0, 0.01)
        with pytest.raises(ValueError):
            QuotientFilter.for_capacity(10, 1.5)


class TestStructure:
    def test_iter_fingerprints_matches_inserts(self):
        qf = QuotientFilter(6, 6, seed=9)
        keys = list(range(40))
        expected = sorted(qf._fingerprint(k) for k in keys)
        for key in keys:
            qf.insert(key)
        assert sorted(qf.iter_fingerprints()) == expected

    def test_wraparound_stretch(self):
        # Force fingerprints whose quotients sit at the top of the table so
        # runs wrap past slot 2^q - 1.
        qf = QuotientFilter(4, 4, seed=0)
        top = qf.n_slots - 1
        fps = [(top << 4) | r for r in range(5)]  # five remainders, quotient 15
        for fp in fps:
            qf._insert_fingerprint(fp)
        for fp in fps:
            assert qf._contains_fingerprint(fp)
        assert not qf._contains_fingerprint((top << 4) | 9)
        # Delete across the wrap, too.
        for fp in fps:
            qf._delete_fingerprint(fp)
        assert len(qf) == 0

    def test_probe_length_positive(self):
        qf = QuotientFilter(6, 6, seed=1)
        for i in range(30):
            qf.insert(i)
        assert qf.probe_length(0) >= 1


@st.composite
def _fingerprints(draw, q_bits=5, r_bits=4):
    quotient = draw(st.integers(min_value=0, max_value=(1 << q_bits) - 1))
    remainder = draw(st.integers(min_value=0, max_value=(1 << r_bits) - 1))
    return (quotient << r_bits) | remainder


class TestModelBased:
    """Drive the filter and an exact multiset with the same fingerprint ops."""

    @given(
        st.lists(
            st.tuples(st.sampled_from(["insert", "delete", "query"]), _fingerprints()),
            max_size=120,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_matches_exact_multiset(self, ops):
        qf = QuotientFilter(5, 4, seed=0)  # 32 slots
        model: dict[int, int] = {}
        for op, fp in ops:
            if op == "insert":
                if len(qf) >= qf.capacity:
                    continue
                qf._insert_fingerprint(fp)
                model[fp] = model.get(fp, 0) + 1
            elif op == "delete":
                if model.get(fp, 0) > 0:
                    qf._delete_fingerprint(fp)
                    model[fp] -= 1
                    if model[fp] == 0:
                        del model[fp]
            else:
                assert qf._contains_fingerprint(fp) == (fp in model)
        # Final full sweep: the filter must be fingerprint-exact.
        for fp in range(1 << 9):
            assert qf._contains_fingerprint(fp) == (fp in model)
        expected = sorted(f for f, c in model.items() for _ in range(c))
        assert sorted(qf.iter_fingerprints()) == expected
