"""Replicated serving tests: failure detection, quorum reads, handoff,
anti-entropy, and crash chaos.

The contract under test (docs/robustness.md): every write lands on each
of its R replicas directly, as a durable hint, or as a durable taint on
the replica that missed it — so no interleaving of kills, wipes, heals,
crashed hint replays, and repair rounds can make a stored key answer
ABSENT.  Convergence machinery (hint replay + digest anti-entropy) then
drives every replica back to the max-seq union state.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    rule,
)

from repro.common.clock import Answer, Deadline, SimulatedClock
from repro.common.faults import FaultInjector, FaultyBlockDevice, SimulatedCrash
from repro.common.storage import BlockDevice
from repro.core.routing import (
    ConsistentHashRouter,
    HashRangeRouter,
)
from repro.serve.replica import (
    AntiEntropyRepairer,
    FailureDetector,
    ReplicatedStore,
    run_replica_storm,
)

CHAOS_SEEDS = [int(os.environ.get("REPRO_CHAOS_SEED", "0")) + i for i in range(2)]

HANDOFF_STEPS = [
    "handoff.replay",
    "handoff.replay:applied",
    "handoff.replay:batch",
]


# -- replica placement -------------------------------------------------------------


class TestPreferenceList:
    def test_distinct_replicas_up_to_n(self):
        router = ConsistentHashRouter(range(5), seed=9)
        for key in list(range(40)) + [f"k{i}" for i in range(40)]:
            prefs = router.preference_list(key, 3)
            assert len(prefs) == 3
            assert len(set(prefs)) == 3
            assert prefs[0] == router.owner(key)

    def test_clamps_to_available_shards(self):
        router = ConsistentHashRouter(range(2), seed=9)
        assert len(router.preference_list("x", 5)) == 2

    def test_rejects_nonpositive_n(self):
        router = ConsistentHashRouter(range(3), seed=9)
        with pytest.raises(ValueError):
            router.preference_list("x", 0)

    def test_stable_for_fixed_seed(self):
        a = ConsistentHashRouter(range(4), seed=3)
        b = ConsistentHashRouter(range(4), seed=3)
        for key in range(50):
            assert a.preference_list(key, 3) == b.preference_list(key, 3)

    def test_base_router_successor_walk(self):
        router = HashRangeRouter.uniform([0, 1, 2, 3], seed=2)
        for key in range(30):
            prefs = router.preference_list(key, 3)
            owner = router.owner(key)
            # Base rule: sorted-id successor walk from the owner, wrapping.
            expected = tuple((owner + i) % 4 for i in range(3))
            assert prefs == expected


class TestHistogramSplit:
    def test_median_cut_balances_skewed_population(self):
        router = HashRangeRouter.uniform([0], seed=4)
        # All observed keys cluster in the low tenth of the hash space:
        # a geometric midpoint split would leave the upper half empty.
        points = [i * 137 for i in range(200)]
        split = router.split(0, 1, histogram=points)
        cut = split.ranges_of(1)[0][0]
        left = sum(1 for p in points if p < cut)
        assert abs(left - 100) <= 1  # median cut: half the observed keys

    def test_without_histogram_cut_is_geometric_midpoint(self):
        router = HashRangeRouter.uniform([0], seed=4)
        split = router.split(0, 1)
        (lo, hi), = split.ranges_of(1)
        assert lo == 2 ** 63  # midpoint of the full space

    def test_cut_clamped_inside_range(self):
        router = HashRangeRouter.uniform([0], seed=4)
        # Every observed key at the very bottom: the clamp must keep both
        # sides non-empty.
        split = router.split(0, 1, histogram=[0] * 50)
        (lo, hi), = split.ranges_of(1)
        assert 0 < lo < 2 ** 64

    def test_empty_histogram_falls_back_to_midpoint(self):
        router = HashRangeRouter.uniform([0], seed=4)
        assert router.split(0, 1, histogram=[]).bounds == \
            router.split(0, 1).bounds


# -- failure detection -------------------------------------------------------------


class TestFailureDetector:
    def test_fresh_heartbeat_clears_suspicion(self):
        clock = SimulatedClock()
        det = FailureDetector(clock)
        det.record_failure(0)
        det.record_failure(0)
        assert det.suspicion(0) == 2.0
        det.heartbeat(0)
        assert det.suspicion(0) == 0.0

    def test_suspicion_accrues_with_silence(self):
        clock = SimulatedClock()
        det = FailureDetector(clock)
        for _ in range(5):
            clock.advance(0.01)
            det.heartbeat(0)
        low = det.suspicion(0)
        clock.advance(0.5)  # 50 mean intervals of silence
        assert det.suspicion(0) > low
        assert det.suspected(0)

    def test_consecutive_failures_trip_threshold(self):
        det = FailureDetector(SimulatedClock())
        for _ in range(4):
            det.record_failure(1)
        assert det.suspected(1)
        assert not det.suspected(2)


def _fresh_store(n_nodes=3, seed=0, *, device=None, injector=None):
    device = BlockDevice() if device is None else device
    clock = SimulatedClock()
    store = ReplicatedStore(
        device, n_nodes=n_nodes, clock=clock,
        detector=FailureDetector(clock), injector=injector, seed=seed,
    )
    return store, device


# -- the quorum combine rule -------------------------------------------------------


class TestQuorumCombine:
    N = 120

    def _loaded(self, **kwargs):
        store, device = _fresh_store(**kwargs)
        for key in range(self.N):
            store.put(key, f"v{key}")
        return store, device

    def test_present_from_any_healthy_replica(self):
        store, _ = self._loaded()
        # Kill everything except one replica of the probed key: a single
        # complete PRESENT answer is authoritative.
        key = 7
        keep = store.replicas_of(key)[-1]
        for node_id in store.nodes:
            if node_id != keep:
                store.kill(node_id)
        result = store.lookup(key)
        assert result.state is Answer.PRESENT
        assert result.value == f"v{key}"

    def test_absent_needs_a_read_quorum(self):
        store, _ = self._loaded()
        assert store.read_quorum == 2
        assert store.lookup("missing").state is Answer.ABSENT
        replicas = store.replicas_of("missing")
        store.kill(replicas[0])
        store.kill(replicas[1])
        result = store.lookup("missing")  # one eligible voter < quorum
        assert result.state is Answer.MAYBE
        assert result.reason == "unavailable"

    def test_tainted_replica_cannot_vote_absent(self):
        store, _ = self._loaded()
        replicas = store.replicas_of("missing")
        store.kill(replicas[0])
        store.set_tainted(replicas[1], True)
        result = store.lookup("missing")
        assert result.state is Answer.MAYBE

    def test_pending_hints_block_absent_votes(self):
        store, _ = self._loaded()
        victim = store.replicas_of("missing")[0]
        store.kill(victim)
        # Writes to other keys on the victim journal hints; until they
        # replay, the healed victim may be missing those writes and must
        # not testify to absence.
        hinted = [k for k in range(self.N, self.N + 50)
                  if victim in store.replicas_of(k)]
        for key in hinted:
            store.put(key, "late")
        store.heal(victim)
        assert store.handoff.pending_for(victim) > 0
        other = next(n for n in store.nodes if n != victim)
        store.kill(other)
        # victim + one dead replica: no quorum for keys owned by both.
        probe = next(
            k for k in range(self.N + 50, self.N + 400)
            if set(store.replicas_of(k)) >= {victim, other}
        )
        assert store.lookup(probe).state is Answer.MAYBE
        store.handoff.replay(batch=10_000, force=True)
        assert store.handoff.pending_for(victim) == 0
        assert store.lookup(probe).state is Answer.ABSENT
        for key in hinted:
            assert store.get(key) == "late"

    def test_tombstone_counts_as_absence_evidence(self):
        store, _ = self._loaded()
        store.delete(3)
        result = store.lookup(3)
        assert result.state is Answer.ABSENT
        assert result.complete

    def test_expired_deadline_answers_maybe(self):
        store, _ = self._loaded()
        deadline = Deadline.after(store.clock, 0.0)
        result = store.lookup(5, deadline=deadline)
        assert result.state is Answer.MAYBE
        assert result.reason == "deadline"

    def test_fanout_order_prefers_low_suspicion(self):
        store, _ = self._loaded()
        replicas = store.replicas_of(11)
        for _ in range(5):
            store.detector.record_failure(replicas[0])
        order = store._fanout_order(replicas)
        assert order[-1] == replicas[0]

    def test_write_seq_is_monotone_and_epoch_tracks_it(self):
        store, _ = self._loaded()
        before = store.mutation_epoch
        store.put(1, "x")
        assert store.mutation_epoch == before + 1
        store.heal(0)  # heal bumps the epoch base conservatively
        assert store.mutation_epoch > before + 1


# -- hinted handoff ----------------------------------------------------------------


class TestHintedHandoff:
    def test_write_to_dead_replica_journals_a_hint(self):
        store, _ = _fresh_store()
        victim = store.replicas_of("k")[0]
        store.kill(victim)
        store.put("k", "v1")
        assert store.handoff.pending_for(victim) == 1
        assert store.handoff.journaled == 1

    def test_replay_skips_dead_targets(self):
        store, _ = _fresh_store()
        victim = store.replicas_of("k")[0]
        store.kill(victim)
        store.put("k", "v1")
        assert store.handoff.replay(force=True) == 0
        assert store.handoff.pending_for(victim) == 1

    def test_replay_is_idempotent_over_newer_records(self):
        store, _ = _fresh_store()
        victim = store.replicas_of("k")[0]
        store.kill(victim)
        store.put("k", "old")
        store.heal(victim)
        store.put("k", "new")  # direct write, newer seq
        assert store.handoff.replay(force=True) == 1
        # The stale hint must not clobber the newer direct write.
        assert store.nodes[victim].tree.get("k")["v"] == "new"

    def test_journal_failure_taints_the_target(self):
        injector = FaultInjector(seed=1)
        device = FaultyBlockDevice(injector=injector)
        store, _ = _fresh_store(device=device, injector=injector)
        victim = store.replicas_of("k")[0]
        store.kill(victim)
        injector.lost_write = {"hint@handoff": 1.0, "*": 0.0}
        store.put("k", "v1")
        assert store.handoff.dropped == 1
        assert store.nodes[victim].tainted

    def test_tombstones_travel_through_hints(self):
        store, _ = _fresh_store()
        store.put("k", "v1")
        victim = store.replicas_of("k")[0]
        store.kill(victim)
        store.delete("k")
        store.heal(victim)
        store.handoff.replay(force=True)
        assert store.lookup("k").state is Answer.ABSENT
        assert store.handoff.pending() == 0


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("crash_step", HANDOFF_STEPS)
class TestHandoffCrashAtEveryStep:
    """Kill the process at every handoff-replay crash point; recovery
    from the devices alone must drain the journal exactly once."""

    N = 120

    def _recover(self, device):
        store = ReplicatedStore.recover(device, clock=SimulatedClock())
        repairer = AntiEntropyRepairer(store)
        return store, repairer

    def test_replay_crash_recovers_and_converges(self, crash_step, seed):
        injector = FaultInjector(seed=seed)
        store, device = _fresh_store(seed=seed, injector=injector)
        for key in range(self.N):
            store.put(key, f"v{key}")
        victim = (seed + 1) % 3
        store.kill(victim)
        updated = [k for k in range(self.N)
                   if victim in store.replicas_of(k)][:20]
        for key in updated:
            store.put(key, f"u{key}")
        store.heal(victim)
        injector.crash_after(crash_step)
        crashed = False
        try:
            while store.handoff.pending():
                if store.handoff.replay(batch=4, force=True) == 0:
                    break
        except SimulatedCrash as crash:
            crashed = True
            assert crash.step == crash_step
            store, repairer = self._recover(device)
        assert crashed, f"crash point {crash_step} never fired"
        # Mid-crash state must never answer a stored key ABSENT.
        for key in range(0, self.N, 13):
            assert store.lookup(key).state is not Answer.ABSENT
        while store.handoff.pending():
            if store.handoff.replay(batch=8, force=True) == 0:
                break
        assert store.handoff.pending() == 0
        for key in updated:
            assert store.get(key) == f"u{key}", key
        for node in store.nodes.values():
            record = node.tree.get(updated[0])
            assert record is not None and record["v"] == f"u{updated[0]}"


# -- anti-entropy ------------------------------------------------------------------


class TestAntiEntropy:
    N = 150

    def _loaded(self, seed=0):
        store, device = _fresh_store(seed=seed)
        for key in range(self.N):
            store.put(key, f"v{key}")
        return store, device

    def _drain(self, repairer, limit=4_000):
        for _ in range(limit):
            repairer.pump(force=True)
            if repairer.idle and repairer.converged():
                return
        raise AssertionError("anti-entropy did not converge")

    def test_clean_fleet_is_converged(self):
        store, _ = self._loaded()
        assert AntiEntropyRepairer(store).converged()

    def test_wiped_replica_is_rebuilt_and_untainted(self):
        store, _ = self._loaded()
        store.kill(1, wipe=True)
        store.heal(1)
        assert store.nodes[1].tainted
        repairer = AntiEntropyRepairer(store)
        assert not repairer.converged()
        self._drain(repairer)
        assert repairer.repairs > 0
        assert not store.nodes[1].tainted
        owned = [k for k in range(self.N) if 1 in store.replicas_of(k)]
        for key in owned:
            assert store.nodes[1].tree.get(key)["v"] == f"v{key}"

    def test_repair_respects_placement(self):
        store, _ = self._loaded()
        store.kill(1, wipe=True)
        store.heal(1)
        self._drain(AntiEntropyRepairer(store))
        not_owned = [k for k in range(self.N) if 1 not in store.replicas_of(k)]
        for key in not_owned:
            assert store.nodes[1].tree.get(key) is None

    def test_deletes_converge_via_tombstones(self):
        store, _ = self._loaded()
        store.kill(1, wipe=True)
        store.heal(1)
        dropped = [k for k in range(0, self.N, 10)]
        for key in dropped:
            store.delete(key)
        self._drain(AntiEntropyRepairer(store))
        for key in dropped:
            assert store.lookup(key).state is Answer.ABSENT

    def test_pump_noops_while_untainted(self):
        store, _ = self._loaded()
        repairer = AntiEntropyRepairer(store)
        assert not repairer.pump()
        assert repairer.pumps == 0

    def test_taint_needs_full_clean_round_to_clear(self):
        store, _ = self._loaded()
        store.set_tainted(2, True)
        repairer = AntiEntropyRepairer(store)
        for _ in range(4):  # a few pumps: far less than a full round
            repairer.pump(force=True)
        assert store.nodes[2].tainted
        self._drain(repairer)
        assert not store.nodes[2].tainted


# -- crash-recovery of the whole fleet ---------------------------------------------


class TestFleetRecovery:
    def test_recover_restores_state_and_flags(self):
        store, device = _fresh_store(seed=5)
        for key in range(80):
            store.put(key, f"v{key}")
        store.kill(1, wipe=True)
        store.delete(3)
        seq = store.write_seq
        revived = ReplicatedStore.recover(device, clock=SimulatedClock())
        assert revived.write_seq >= seq
        assert not revived.nodes[1].alive
        assert revived.nodes[1].tainted
        assert revived.lookup(7).state is Answer.PRESENT
        assert revived.lookup(3).state is not Answer.PRESENT
        revived.put(99, "post-crash")  # new writes keep winning max-seq
        assert revived.get(99) == "post-crash"

    def test_recover_without_manifest_fails_loudly(self):
        with pytest.raises(RuntimeError):
            ReplicatedStore.recover(BlockDevice())


# -- hypothesis: never-ABSENT under arbitrary interleavings ------------------------


class ReplicaMachine(RuleBasedStateMachine):
    """Interleave writes, deletes, kills, wipes, heals, hint replays,
    repair pumps, and full-process crashes: a stored key must never
    read ABSENT, and a full drain must converge every digest."""

    KEYS = st.integers(min_value=0, max_value=24)

    def __init__(self):
        super().__init__()
        self.device = BlockDevice()
        clock = SimulatedClock()
        self.store = ReplicatedStore(
            self.device, n_nodes=3, clock=clock,
            detector=FailureDetector(clock), seed=2,
        )
        self.repairer = AntiEntropyRepairer(self.store)
        self.model: dict[int, str] = {}
        self.writes = 0

    @rule(key=KEYS)
    def put(self, key):
        self.writes += 1
        value = f"v{self.writes}"
        self.store.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @rule(node=st.integers(min_value=0, max_value=2), wipe=st.booleans())
    def kill(self, node, wipe):
        if not self.store.nodes[node].alive:
            return
        # Wiping the last untainted copy is total data destruction —
        # beyond what R-way replication can (or claims to) survive; the
        # taint gates still keep such keys at MAYBE, never ABSENT, but
        # the teardown's full-recovery check needs one intact source.
        if wipe and all(
            other.tainted
            for oid, other in self.store.nodes.items() if oid != node
        ):
            wipe = False
        self.store.kill(node, wipe=wipe)

    @rule(node=st.integers(min_value=0, max_value=2))
    def heal(self, node):
        if not self.store.nodes[node].alive:
            self.store.heal(node)

    @rule()
    def replay_some(self):
        self.store.handoff.replay(batch=3, force=True)

    @rule()
    def pump_repair(self):
        self.repairer.pump(force=True)

    @rule()
    def crash_and_recover(self):
        clock = SimulatedClock()
        self.store = ReplicatedStore.recover(self.device, clock=clock)
        self.repairer = AntiEntropyRepairer(self.store)

    @invariant()
    def stored_keys_never_absent(self):
        for key in self.model:
            assert self.store.lookup(key).state is not Answer.ABSENT, key

    def teardown(self):
        # Full drain: heal everyone, replay every hint, repair every
        # bucket — then the fleet must agree with the model.
        for node_id in list(self.store.nodes):
            if not self.store.nodes[node_id].alive:
                self.store.heal(node_id)
        for _ in range(200):
            if self.store.handoff.replay(batch=16, force=True) == 0:
                break
        assert self.store.handoff.pending() == 0
        for _ in range(4_000):
            self.repairer.pump(force=True)
            if self.repairer.idle and self.repairer.converged():
                break
        assert self.repairer.converged()
        for key, value in self.model.items():
            result = self.store.lookup(key)
            assert result.state is Answer.PRESENT, key
            assert result.value == value


TestReplicaMachine = ReplicaMachine.TestCase
TestReplicaMachine.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


# -- acceptance: the replicated chaos storm ----------------------------------------


def _small_phases():
    from repro.serve import StormPhase

    return (
        StormPhase("calm", 120),
        StormPhase("storm", 160, transient_read=0.5, slowdown=3.0,
                   spike_prob=0.05),
        StormPhase("recovery", 120),
    )


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestReplicaStorm:
    def test_kill_heal_storm_meets_the_contract(self, seed):
        storm, rep, store, repairer = run_replica_storm(
            seed=seed, n_keys=400, n_nodes=3, phases=_small_phases(),
            kill_at=150, heal_at=320, wipe=True, write_fraction=0.05,
        )
        assert storm.false_negatives == 0
        assert rep.kills == 1 and rep.heals == 1
        assert rep.converged
        assert rep.backlog == 0
        assert rep.hints_dropped == 0
        # The wiped replica was rebuilt by repair streaming.
        assert rep.repairs > 0

    def test_replicated_beats_single_copy_under_kill(self, seed):
        phases = _small_phases()
        replicated, *_ = run_replica_storm(
            seed=seed, n_keys=400, n_nodes=3, phases=phases,
            kill_at=150, heal_at=0, drain=False,
        )
        single, *_ = run_replica_storm(
            seed=seed, n_keys=400, n_nodes=1, phases=phases,
            kill_at=150, heal_at=0, drain=False,
        )
        assert replicated.false_negatives == 0
        assert single.false_negatives == 0
        # With its only copy gone, the single-node fleet cannot serve an
        # authoritative answer again; R=3 keeps serving through the kill.
        assert replicated.goodput() > single.goodput()

    def test_crash_during_handoff_replay_recovers(self, seed):
        storm, rep, store, repairer = run_replica_storm(
            seed=seed, n_keys=300, n_nodes=3, phases=_small_phases(),
            kill_at=120, heal_at=300, write_fraction=0.1,
            crash_at_step="handoff.replay:applied",
        )
        assert storm.false_negatives == 0
        assert rep.converged
        assert rep.backlog == 0
