"""Cross-cutting property-based tests (hypothesis) over the whole registry.

These encode the *universal* filter contracts from §1 of the paper:

1. no false negatives — ever, for any insertion sequence;
2. delete round-trip — inserting then deleting a batch leaves no trace
   that can cause false negatives on other members;
3. idempotent queries — querying must not mutate visible state;
4. determinism — same seed, same inputs → same answers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import FEATURE_MATRIX, make_filter

def _factory_constructible(f) -> bool:
    """Names make_filter builds directly (maplets/range filters have
    specialised constructors and their own property tests below)."""
    return f.inserts and not f.values and not f.ranges


DYNAMIC_NAMES = sorted(
    name
    for name, f in FEATURE_MATRIX.items()
    if _factory_constructible(f) and f.kind in ("dynamic", "semi-dynamic")
)
DELETING_NAMES = sorted(
    name for name, f in FEATURE_MATRIX.items() if f.deletes and _factory_constructible(f)
)
STATIC_NAMES = ["xor", "xor-plus", "ribbon"]

keys_strategy = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=2**48),
        st.text(min_size=0, max_size=12),
        st.binary(max_size=8),
    ),
    max_size=60,
    unique=True,
)


@pytest.mark.parametrize("name", DYNAMIC_NAMES)
class TestDynamicContracts:
    @given(keys=keys_strategy)
    @settings(max_examples=15, deadline=None)
    def test_no_false_negatives(self, name, keys):
        filt = make_filter(name, capacity=256, epsilon=0.05, seed=7)
        for key in keys:
            filt.insert(key)
        for key in keys:
            assert filt.may_contain(key)

    @given(keys=keys_strategy)
    @settings(max_examples=10, deadline=None)
    def test_query_is_pure(self, name, keys):
        filt = make_filter(name, capacity=256, epsilon=0.05, seed=7)
        for key in keys:
            filt.insert(key)
        probes = list(keys) + ["ghost", 999_999_999]
        first = [filt.may_contain(p) for p in probes]
        second = [filt.may_contain(p) for p in probes]
        assert first == second

    @given(keys=keys_strategy)
    @settings(max_examples=10, deadline=None)
    def test_deterministic_given_seed(self, name, keys):
        a = make_filter(name, capacity=256, epsilon=0.05, seed=11)
        b = make_filter(name, capacity=256, epsilon=0.05, seed=11)
        for key in keys:
            a.insert(key)
            b.insert(key)
        probes = list(keys) + [f"probe{i}" for i in range(20)]
        assert [a.may_contain(p) for p in probes] == [
            b.may_contain(p) for p in probes
        ]


@pytest.mark.parametrize("name", DELETING_NAMES)
class TestDeleteContracts:
    # Distinct keys: several bucketed designs legitimately cap identical
    # fingerprints per bucket (duplicates are exercised in the per-filter
    # test modules for the structures that support them).
    @given(
        keep=st.sets(st.integers(min_value=0, max_value=10**6), max_size=25),
        drop=st.sets(st.integers(min_value=10**7, max_value=2 * 10**7), max_size=25),
    )
    @settings(max_examples=15, deadline=None)
    def test_delete_preserves_other_members(self, name, keep, drop):
        filt = make_filter(name, capacity=256, epsilon=0.05, seed=13)
        for key in sorted(keep) + sorted(drop):
            filt.insert(key)
        for key in sorted(drop):
            filt.delete(key)
        # Deleting `drop` must never evict any of `keep`.
        for key in keep:
            assert filt.may_contain(key)

    @given(keys=st.sets(st.integers(min_value=0, max_value=10**6), max_size=30))
    @settings(max_examples=10, deadline=None)
    def test_full_drain_reaches_empty(self, name, keys):
        filt = make_filter(name, capacity=256, epsilon=0.05, seed=13)
        for key in sorted(keys):
            filt.insert(key)
        for key in sorted(keys):
            filt.delete(key)
        assert len(filt) == 0


@pytest.mark.parametrize("name", STATIC_NAMES)
class TestStaticContracts:
    @given(keys=st.sets(st.integers(min_value=0, max_value=2**48), max_size=80))
    @settings(max_examples=15, deadline=None)
    def test_no_false_negatives(self, name, keys):
        filt = make_filter(name, keys=sorted(keys), epsilon=0.05, seed=17)
        for key in keys:
            assert filt.may_contain(key)


class TestRangeFilterContracts:
    @given(
        keys=st.sets(st.integers(min_value=0, max_value=(1 << 24) - 1), min_size=1, max_size=60),
        probes=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=(1 << 24) - 1),
                st.integers(min_value=0, max_value=200),
            ),
            max_size=20,
        ),
    )
    @settings(max_examples=20, deadline=None)
    def test_no_false_negative_ranges(self, keys, probes):
        from repro.rangefilters.grafite import Grafite
        from repro.rangefilters.snarf import SNARF
        from repro.rangefilters.surf import SuRF

        key_list = sorted(keys)
        filters = [
            SuRF(key_list, key_bits=24, seed=19),
            SNARF(key_list, key_bits=24, multiplier=8, seed=19),
            Grafite(key_list, key_bits=24, max_range=256, epsilon=0.1, seed=19),
        ]
        sorted_keys = key_list
        for lo, width in probes:
            hi = min((1 << 24) - 1, lo + min(width, 255))
            from bisect import bisect_left

            i = bisect_left(sorted_keys, lo)
            truly = i < len(sorted_keys) and sorted_keys[i] <= hi
            if truly:
                for filt in filters:
                    assert filt.may_intersect(lo, hi)


class TestMapletContracts:
    @given(
        items=st.dictionaries(
            st.integers(min_value=0, max_value=10**9),
            st.integers(min_value=0, max_value=255),
            max_size=40,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_dynamic_maplets_return_their_value(self, items):
        from repro.maplets.qf_maplet import QuotientFilterMaplet
        from repro.maplets.slimdb import SlimDBMaplet

        qf = QuotientFilterMaplet.for_capacity(max(1, len(items)) * 2, 0.05, seed=23)
        slim = SlimDBMaplet(fingerprint_bits=20, seed=23)
        for key, value in items.items():
            qf.insert(key, value)
            slim.insert(key, value)
        for key, value in items.items():
            assert value in qf.get(key)
            assert slim.get(key) == [value]

    @given(
        items=st.dictionaries(
            st.integers(min_value=0, max_value=10**9),
            st.integers(min_value=0, max_value=255),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_bloomier_exact_for_members(self, items):
        from repro.maplets.bloomier import BloomierMaplet

        maplet = BloomierMaplet(items, value_bits=8, seed=29)
        for key, value in items.items():
            assert maplet.get(key) == [value]


class TestCountingContracts:
    @given(
        multiset=st.dictionaries(
            st.integers(min_value=0, max_value=10**6),
            st.integers(min_value=1, max_value=40),
            max_size=25,
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_counts_bounded_below_by_truth(self, multiset):
        from repro.counting.cqf import CountingQuotientFilter
        from repro.counting.spectral import SpectralBloomFilter

        cqf = CountingQuotientFilter.for_capacity(128, 0.05, seed=31)
        sbf = SpectralBloomFilter(128, 0.05, seed=31)
        for key, mult in multiset.items():
            for _ in range(mult):
                cqf.insert(key)
                sbf.insert(key)
        for key, mult in multiset.items():
            assert cqf.count(key) >= mult
            assert sbf.count(key) >= mult
