"""Tests for quotient-filter merging and the out-of-RAM counter."""

from __future__ import annotations

import pytest

from repro.apps.external_counter import ExternalQuotientCounter
from repro.filters.quotient import QuotientFilter
from repro.workloads.synthetic import disjoint_key_sets


class TestSortedIteration:
    def test_globally_sorted(self):
        qf = QuotientFilter(7, 8, seed=1)
        for i in range(100):
            qf.insert(i)
        fps = list(qf.iter_fingerprints_sorted())
        assert fps == sorted(fps)
        assert len(fps) == 100

    def test_sorted_with_wraparound_stretch(self):
        qf = QuotientFilter(4, 4, seed=0)
        top = qf.n_slots - 1
        for r in range(4):  # run at the last slot wraps past the end
            qf._insert_fingerprint((top << 4) | r)
        qf._insert_fingerprint((1 << 4) | 2)
        fps = list(qf.iter_fingerprints_sorted())
        assert fps == sorted(fps)


class TestMerge:
    def test_merge_preserves_membership(self):
        members, negatives = disjoint_key_sets(600, 4000, seed=2)
        parts = [members[0::3], members[1::3], members[2::3]]
        filters = []
        for part in parts:
            qf = QuotientFilter(10, 10, seed=3)
            for key in part:
                qf.insert(key)
            filters.append(qf)
        merged = QuotientFilter.merge(filters)
        assert len(merged) == 600
        assert all(merged.may_contain(k) for k in members)
        fpr = sum(merged.may_contain(k) for k in negatives) / len(negatives)
        assert fpr < 0.01

    def test_merge_grows_table_when_needed(self):
        filters = []
        for i in range(4):
            qf = QuotientFilter(6, 10, seed=4)  # capacity 57 each
            for j in range(50):
                qf.insert(i * 1000 + j)
            filters.append(qf)
        merged = QuotientFilter.merge(filters)
        assert merged.quotient_bits > 6
        assert len(merged) == 200
        for i in range(4):
            assert all(merged.may_contain(i * 1000 + j) for j in range(50))

    def test_merge_is_multiset_union(self):
        a = QuotientFilter(6, 8, seed=5)
        b = QuotientFilter(6, 8, seed=5)
        a.insert("dup")
        b.insert("dup")
        merged = QuotientFilter.merge([a, b])
        merged.delete("dup")
        assert merged.may_contain("dup")  # second copy remains

    def test_merge_rejects_mismatched(self):
        a = QuotientFilter(6, 8, seed=1)
        b = QuotientFilter(6, 8, seed=2)
        with pytest.raises(ValueError, match="geometry"):
            QuotientFilter.merge([a, b])
        with pytest.raises(ValueError, match="at least one"):
            QuotientFilter.merge([])

    def test_merge_exhausted_fingerprints(self):
        filters = []
        for i in range(8):
            qf = QuotientFilter(4, 2, seed=6)
            for j in range(qf.capacity):
                qf.insert(i * 100 + j)
            filters.append(qf)
        with pytest.raises(ValueError, match="fingerprint bits"):
            QuotientFilter.merge(filters)


class TestExternalCounter:
    def test_spills_and_merges(self):
        counter = ExternalQuotientCounter(64, 0.001, seed=7)
        members, negatives = disjoint_key_sets(500, 3000, seed=8)
        for key in members:
            counter.add(key)
        # Shard tables round up to powers of two (~115 keys each): 500 keys
        # must spill several times — well beyond one shard of "RAM".
        assert counter.n_spilled_shards >= 4
        merged = counter.finalize()
        assert all(merged.may_contain(k) for k in members)
        fpr = sum(merged.may_contain(k) for k in negatives) / len(negatives)
        assert fpr < 0.01

    def test_sequential_io_accounting(self):
        counter = ExternalQuotientCounter(64, 0.01, seed=9)
        for i in range(500):
            counter.add(i)
        spilled = counter.n_spilled_shards
        writes_after_ingest = counter.device.stats.writes
        assert writes_after_ingest == spilled  # one write per spilled shard
        counter.finalize()
        # The merge reads each spilled run exactly once.
        assert counter.device.stats.reads == spilled
        assert len(counter.device) == 0  # shards reclaimed

    def test_multiset_counts(self):
        counter = ExternalQuotientCounter(32, 0.001, seed=10)
        for _ in range(5):
            counter.add("hot")
        for i in range(100):
            counter.add(i)
        merged = counter.finalize()
        assert counter.count_in(merged, "hot") == 5
        assert counter.total_ingested == 105

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            ExternalQuotientCounter(0, 0.01)
