"""Proteus workload-shift behaviour and serialization property tests.

§2.5 claim under test: Proteus picks (l1, l2) from a query sample, so "it
must maintain a query cache and rebuild itself upon a workload shift to
provide robust performance" — i.e. a filter tuned for one query shape can
underperform on another, and retuning on the new sample recovers.
"""

from __future__ import annotations

from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.serialize import dumps, loads
from repro.filters.bloom import BloomFilter
from repro.filters.quotient import QuotientFilter
from repro.rangefilters.proteus import Proteus
from repro.workloads.synthetic import (
    correlated_range_queries,
    random_key_set,
    random_range_queries,
)

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS


def _fpr(filt, queries, keys):
    def truly(lo, hi):
        i = bisect_left(keys, lo)
        return i < len(keys) and keys[i] <= hi

    empty = [q for q in queries if not truly(*q)]
    if not empty:
        return 0.0
    return sum(1 for lo, hi in empty if filt.may_intersect(lo, hi)) / len(empty)


class TestProteusWorkloadShift:
    @pytest.fixture(scope="class")
    def keys(self):
        return random_key_set(3000, seed=401, universe=UNIVERSE)

    @pytest.fixture(scope="class")
    def workloads(self, keys):
        # Workload A: short, key-correlated ranges (needs deep prefixes).
        wa = correlated_range_queries(keys, 400, 8, gap=64, seed=402)
        # Workload B: long uniform ranges (needs shallow prefixes).
        wb = random_range_queries(400, 1 << 14, seed=403, universe=UNIVERSE)
        return wa, wb

    def test_tuning_fits_the_sampled_workload(self, keys, workloads):
        wa, wb = workloads
        tuned_a = Proteus(keys, key_bits=KEY_BITS, bits_per_key=18,
                          sample_queries=wa[:100], seed=404)
        tuned_b = Proteus(keys, key_bits=KEY_BITS, bits_per_key=18,
                          sample_queries=wb[:100], seed=404)
        # Each tuned filter is at least as good on its own workload as the
        # filter tuned for the other one.
        assert _fpr(tuned_a, wa[100:], keys) <= _fpr(tuned_b, wa[100:], keys) + 0.02
        assert _fpr(tuned_b, wb[100:], keys) <= _fpr(tuned_a, wb[100:], keys) + 0.02

    def test_rebuild_recovers_after_shift(self, keys, workloads):
        """The §2.5 statement, end to end: shift degrades, rebuild recovers."""
        wa, wb = workloads
        tuned_a = Proteus(keys, key_bits=KEY_BITS, bits_per_key=18,
                          sample_queries=wa[:100], seed=404)
        before_shift = _fpr(tuned_a, wa[100:], keys)
        after_shift = _fpr(tuned_a, wb[100:], keys)
        rebuilt = Proteus(keys, key_bits=KEY_BITS, bits_per_key=18,
                          sample_queries=wb[:100], seed=404)
        recovered = _fpr(rebuilt, wb[100:], keys)
        assert recovered <= after_shift + 0.02
        # The configurations genuinely differ or the shift was harmless.
        assert (tuned_a.l1, tuned_a.l2) != (rebuilt.l1, rebuilt.l2) or (
            after_shift <= before_shift + 0.05
        )


class TestSerializationProperties:
    @given(st.sets(st.integers(min_value=0, max_value=2**40), max_size=80),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_bloom_round_trip_is_exact(self, keys, seed):
        bloom = BloomFilter(max(1, len(keys)), 0.02, seed=seed)
        for key in keys:
            bloom.insert(key)
        restored = loads(dumps(bloom))
        probes = list(keys) + [2**41 + i for i in range(50)]
        assert [restored.may_contain(p) for p in probes] == [
            bloom.may_contain(p) for p in probes
        ]

    @given(st.sets(st.integers(min_value=0, max_value=2**40), max_size=60),
           st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_quotient_round_trip_preserves_fingerprints(self, keys, seed):
        qf = QuotientFilter(8, 9, seed=seed)
        for key in keys:
            qf.insert(key)
        restored = loads(dumps(qf))
        assert sorted(restored.iter_fingerprints()) == sorted(qf.iter_fingerprints())
        assert len(restored) == len(qf)
