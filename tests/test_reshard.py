"""Online-resharding tests: routers, the sharded store, and crash chaos.

The contract under test (docs/robustness.md): a live split/merge walks a
journaled state machine (PLANNED → DOUBLE_WRITE → BACKFILL → VERIFY →
CUTOVER → RETIRE → DONE) whose every step is idempotent, so a crash at
*any* point recovers from the devices alone and converges — exactly-once
ownership after retirement, and never a false negative along the way.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.common.clock import Answer, SimulatedClock
from repro.common.faults import FaultInjector, SimulatedCrash
from repro.common.hashing import hash_to_range
from repro.common.storage import BlockDevice, NamespacedDevice
from repro.core.concurrent import ShardedFilter
from repro.core.routing import (
    SHARD_SALT,
    ConsistentHashRouter,
    HashRangeRouter,
    HashRouter,
    ModuloRouter,
    router_from_manifest,
)
from repro.filters.bloom import BloomFilter
from repro.obs import use_registry
from repro.serve import (
    MigrationStep,
    ReshardCoordinator,
    ShardedStore,
    StormPhase,
    run_reshard_storm,
)

KEYS = [f"key-{i}" for i in range(400)] + list(range(400))


# -- routers -----------------------------------------------------------------------


class TestHashRouter:
    def test_matches_legacy_sharded_filter_mapping(self):
        router = HashRouter(8, seed=3)
        for key in KEYS:
            assert router.owner(key) == hash_to_range(key, 8, 3 ^ SHARD_SALT)

    def test_manifest_round_trip(self):
        router = HashRouter(5, seed=7, epoch=2)
        clone = router_from_manifest(router.to_manifest())
        assert clone.epoch == 2
        assert clone.shard_ids() == router.shard_ids()
        assert all(clone.owner(k) == router.owner(k) for k in KEYS)


class TestModuloRouter:
    def test_construction_warns_deprecated(self):
        with pytest.warns(DeprecationWarning):
            ModuloRouter(4, seed=1)

    def test_rehydrating_a_manifest_does_not_rewarn(self):
        with pytest.warns(DeprecationWarning):
            manifest = ModuloRouter(4, seed=1).to_manifest()
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            clone = router_from_manifest(manifest)
        assert clone.shard_ids() == (0, 1, 2, 3)


class TestHashRangeRouter:
    def test_uniform_covers_all_shards(self):
        router = HashRangeRouter.uniform(range(4), seed=0)
        owners = {router.owner(k) for k in KEYS}
        assert owners == {0, 1, 2, 3}
        assert router.shard_ids() == (0, 1, 2, 3)

    def test_split_moves_a_strict_subset_to_the_target(self):
        old = HashRangeRouter.uniform(range(3), seed=0)
        new = old.split(1, 3)
        assert new.epoch == old.epoch + 1
        moved = [k for k in KEYS if old.owner(k) != new.owner(k)]
        assert moved  # something actually moves
        for key in moved:
            assert old.owner(key) == 1
            assert new.owner(key) == 3
        # Keys outside the split range are untouched.
        for key in KEYS:
            if old.owner(key) != 1:
                assert new.owner(key) == old.owner(key)

    def test_merge_reassigns_source_to_dest_and_retires_it(self):
        old = HashRangeRouter.uniform(range(3), seed=0)
        new = old.merge(2, 0)
        assert new.epoch == old.epoch + 1
        assert 2 not in new.shard_ids()
        for key in KEYS:
            expected = 0 if old.owner(key) == 2 else old.owner(key)
            assert new.owner(key) == expected

    def test_manifest_round_trip(self):
        router = HashRangeRouter.uniform(range(4), seed=9).split(0, 4)
        clone = router_from_manifest(router.to_manifest())
        assert clone.epoch == router.epoch
        assert all(clone.owner(k) == router.owner(k) for k in KEYS)


class TestConsistentHashRouter:
    def test_deterministic_and_covering(self):
        a = ConsistentHashRouter(range(4), seed=5)
        b = ConsistentHashRouter(range(4), seed=5)
        assert all(a.owner(k) == b.owner(k) for k in KEYS)
        assert {a.owner(k) for k in KEYS} == {0, 1, 2, 3}

    def test_adding_a_shard_moves_only_keys_to_that_shard(self):
        old = ConsistentHashRouter(range(4), seed=5)
        new = old.with_shard(4)
        assert new.epoch == old.epoch + 1
        moved = [k for k in KEYS if old.owner(k) != new.owner(k)]
        assert moved
        assert all(new.owner(k) == 4 for k in moved)
        # Bounded churn: a ring move is ~1/n of the space, not a reshuffle.
        assert len(moved) < len(KEYS) / 2

    def test_removal_inverts_addition(self):
        old = ConsistentHashRouter(range(4), seed=5)
        back = old.with_shard(4).without_shard(4)
        assert all(back.owner(k) == old.owner(k) for k in KEYS)

    def test_manifest_round_trip(self):
        router = ConsistentHashRouter(range(3), seed=2).with_shard(3)
        clone = router_from_manifest(router.to_manifest())
        assert clone.epoch == router.epoch
        assert all(clone.owner(k) == router.owner(k) for k in KEYS)


# -- ShardedFilter routing hooks ---------------------------------------------------


class TestShardedFilterRouting:
    def _filter(self, n_shards=4, **kwargs):
        return ShardedFilter(
            lambda i: BloomFilter(256, 0.01), n_shards, seed=1, **kwargs
        )

    def test_default_router_matches_historical_mapping(self):
        sf = self._filter()
        for key in KEYS:
            assert sf._shard_of(key) == hash_to_range(key, 4, 1 ^ SHARD_SALT)

    def test_insert_and_query_under_custom_router(self):
        sf = self._filter(router=HashRangeRouter.uniform(range(4), seed=1))
        for key in range(100):
            sf.insert(key)
        assert all(sf.may_contain(key) for key in range(100))

    def test_migration_double_applies_and_double_reads(self):
        sf = self._filter()
        target = sf.add_shard(BloomFilter(256, 0.01))
        assert target == 4
        for key in range(50):
            sf.insert(key)
        new_router = HashRouter(5, seed=1, epoch=sf.routing_epoch + 1)
        sf.begin_migration(new_router)
        assert sf.migrating
        # Pre-migration keys stay visible through the old owner...
        assert all(sf.may_contain(key) for key in range(50))
        for key in range(50, 100):
            sf.insert(key)
        sf.complete_migration()
        assert not sf.migrating
        assert sf.routing_epoch == new_router.epoch
        # ...and double-applied keys survive the cutover.
        assert all(sf.may_contain(key) for key in range(50, 100))

    def test_router_beyond_shard_list_rejected(self):
        with pytest.raises(ValueError):
            self._filter(n_shards=2, router=HashRouter(5, seed=1))

    def test_double_migration_rejected(self):
        sf = self._filter()
        sf.begin_migration(HashRouter(4, seed=1, epoch=1))
        with pytest.raises(RuntimeError):
            sf.begin_migration(HashRouter(4, seed=1, epoch=2))


# -- ShardedStore ------------------------------------------------------------------


def _fresh_store(n_shards=3, seed=0):
    device = BlockDevice()
    clock = SimulatedClock()
    store = ShardedStore.create(device, n_shards, seed=seed, clock=clock)
    return device, clock, store


class TestShardedStore:
    def test_put_get_routes_by_range(self):
        _device, _clock, store = _fresh_store()
        for key in range(200):
            store.put(key, f"v{key}")
        assert all(store.get(key) == f"v{key}" for key in range(200))
        assert store.get(9_999, "missing") == "missing"
        assert sum(store.shard_sizes().values()) == 200

    def test_lookup_absent_is_authoritative_when_idle(self):
        _device, _clock, store = _fresh_store()
        store.put(1, "one")
        result = store.lookup(5_000)
        assert result.state is Answer.ABSENT and result.complete

    def test_recover_from_device_alone(self):
        device, clock, store = _fresh_store()
        for key in range(120):
            store.put(key, f"v{key}")
        # No graceful shutdown: reopen purely from the blocks.
        revived = ShardedStore.recover(device, clock=SimulatedClock(), seed=0)
        assert revived.router.epoch == store.router.epoch
        assert sorted(revived.shards) == sorted(store.shards)
        assert all(revived.get(key) == f"v{key}" for key in range(120))

    def test_mutation_epoch_monotone_across_recovery(self):
        device, clock, store = _fresh_store()
        for key in range(60):
            store.put(key, f"v{key}")
        before = store.mutation_epoch
        revived = ShardedStore.recover(device, clock=SimulatedClock(), seed=0)
        assert revived.mutation_epoch >= before
        revived.put(60, "v60")
        assert revived.mutation_epoch > before

    def test_double_reads_counted_only_during_migration(self):
        device, clock, store = _fresh_store()
        for key in range(100):
            store.put(key, f"v{key}")
        store.lookup(1)
        assert store.double_reads == 0
        coordinator = ReshardCoordinator(store, clock=clock)
        coordinator.plan_split()
        coordinator.pump(force=True)  # -> DOUBLE_WRITE
        mig = store.migration
        moving = [k for k in range(100) if mig.moving(k)]
        assert moving
        before = store.double_reads
        for key in moving:
            result = store.lookup(key)
            assert result.state is not Answer.ABSENT
        assert store.double_reads == before + len(moving)


# -- the coordinator's state machine -----------------------------------------------


def _pump_to_done(coordinator, store, limit=10_000):
    guard = 0
    while store.migration is not None:
        guard += 1
        assert guard < limit, f"migration stuck at {store.migration.step}"
        coordinator.pump(budget=0.5, force=True)


def _ownership_census(store):
    """Map key -> list of shards whose *data* holds it."""
    census = {}
    for sid, tree in store.shards.items():
        for key, _value in tree.items():
            census.setdefault(key, []).append(sid)
    return census


class TestCoordinator:
    N = 300

    def _loaded(self, seed=0, n_shards=3):
        device, clock, store = _fresh_store(n_shards, seed=seed)
        for key in range(self.N):
            store.put(key, f"v{key}")
        coordinator = ReshardCoordinator(store, clock=clock)
        return device, clock, store, coordinator

    def test_split_walks_every_step_to_done(self):
        _device, _clock, store, coordinator = self._loaded()
        old_epoch = store.router.epoch
        mig = coordinator.plan_split()
        seen = {mig.step}
        guard = 0
        while store.migration is not None:
            guard += 1
            assert guard < 10_000
            coordinator.pump(budget=0.5, force=True)
            if store.migration is not None:
                seen.add(store.migration.step)
        assert seen >= {
            MigrationStep.PLANNED, MigrationStep.DOUBLE_WRITE,
            MigrationStep.BACKFILL, MigrationStep.VERIFY,
            MigrationStep.CUTOVER, MigrationStep.RETIRE,
        }
        assert store.router.epoch == old_epoch + 1
        assert coordinator.last_migration.step is MigrationStep.DONE

    def test_split_ends_with_exactly_once_ownership(self):
        _device, _clock, store, coordinator = self._loaded()
        coordinator.plan_split()
        _pump_to_done(coordinator, store)
        census = _ownership_census(store)
        assert sorted(census) == list(range(self.N))
        for key, owners in census.items():
            assert owners == [store.router.owner(key)], key
        assert all(store.get(key) == f"v{key}" for key in range(self.N))

    def test_merge_retires_the_source_shard(self):
        _device, _clock, store, coordinator = self._loaded()
        victim = max(store.shards)
        coordinator.plan_merge(victim, min(store.shards))
        _pump_to_done(coordinator, store)
        assert victim not in store.shards
        assert victim not in store.router.shard_ids()
        assert all(store.get(key) == f"v{key}" for key in range(self.N))

    def test_writes_during_migration_survive_cutover(self):
        _device, clock, store, _fast = self._loaded()
        # Small batches so the migration spans all 50 interleaved writes.
        coordinator = ReshardCoordinator(store, clock=clock, batch_keys=4)
        coordinator.plan_split()
        extra = range(self.N, self.N + 50)
        pending = iter(extra)
        guard = 0
        while store.migration is not None:
            guard += 1
            assert guard < 10_000
            coordinator.pump(budget=0.5, force=True)
            key = next(pending, None)
            if key is not None:
                store.put(key, f"live-{key}")
        for key in pending:  # anything the migration outpaced
            store.put(key, f"live-{key}")
        store.delete(0)
        assert all(store.get(key) == f"live-{key}" for key in extra)
        assert store.get(0, "gone") == "gone"

    def test_journal_records_plan_then_steps(self):
        _device, _clock, store, coordinator = self._loaded()
        coordinator.plan_split()
        _pump_to_done(coordinator, store)
        records = coordinator.journal_records()
        assert records[0]["kind"] == "plan"
        steps = [r["step"] for r in records if r["kind"] == "step"]
        assert steps[-1] == MigrationStep.DONE.value
        assert [r["seq"] for r in records] == sorted(r["seq"] for r in records)

    def test_second_plan_while_migrating_rejected(self):
        _device, _clock, store, coordinator = self._loaded()
        coordinator.plan_split()
        with pytest.raises(RuntimeError):
            coordinator.plan_split()


# -- crash chaos: every crash point, recover from the devices alone ----------------


CRASH_STEPS = [
    "planned",
    "double_write",
    "backfill",
    "backfill:batch",
    "verify",
    "cutover",
    "cutover:manifest",
    "retire",
    "done",
]
CHAOS_SEEDS = [int(os.environ.get("REPRO_CHAOS_SEED", "0")) + i for i in range(2)]


def _crash_recover(device, seed):
    """What a process restart does: rebuild everything from blocks."""
    store = ShardedStore.recover(device, clock=SimulatedClock(), seed=seed)
    coordinator = ReshardCoordinator.recover(store, injector=None)
    store.scrub(repair=True)
    return store, coordinator


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
@pytest.mark.parametrize("crash_step", CRASH_STEPS)
class TestCrashAtEveryStep:
    N = 250

    def test_recovery_converges_with_exactly_once_ownership(self, crash_step, seed):
        device = BlockDevice()
        clock = SimulatedClock()
        store = ShardedStore.create(device, 3, seed=seed, clock=clock)
        for key in range(self.N):
            store.put(key, f"v{key}")
        injector = FaultInjector(seed=seed)
        injector.crash_after(f"reshard.{crash_step}")
        coordinator = ReshardCoordinator(store, clock=clock, injector=injector)
        crashed = False
        try:
            coordinator.plan_split()
            _pump_to_done(coordinator, store)
        except SimulatedCrash as crash:
            crashed = True
            assert crash.step == f"reshard.{crash_step}"
            store, coordinator = _crash_recover(device, seed)
        assert crashed, f"crash point reshard.{crash_step} never fired"
        # Mid-crash state must never answer a stored key ABSENT.
        for key in range(0, self.N, 17):
            assert store.lookup(key).state is not Answer.ABSENT
        _pump_to_done(coordinator, store)
        assert store.migration is None
        census = _ownership_census(store)
        assert sorted(census) == list(range(self.N))
        for key, owners in census.items():
            assert owners == [store.router.owner(key)], key
        assert all(store.get(key) == f"v{key}" for key in range(self.N))

    def test_double_crash_still_converges(self, crash_step, seed):
        device = BlockDevice()
        clock = SimulatedClock()
        store = ShardedStore.create(device, 3, seed=seed, clock=clock)
        for key in range(self.N):
            store.put(key, f"v{key}")
        injector = FaultInjector(seed=seed)
        injector.crash_after(f"reshard.{crash_step}")
        coordinator = ReshardCoordinator(store, clock=clock, injector=injector)
        try:
            coordinator.plan_split()
            _pump_to_done(coordinator, store)
        except SimulatedCrash:
            store, coordinator = _crash_recover(device, seed)
            # Crash again immediately after the resumed step's journal write.
            injector2 = FaultInjector(seed=seed + 1)
            if store.migration is not None:
                injector2.crash_after(f"reshard.{store.migration.step.value}")
            coordinator.injector = injector2
            try:
                _pump_to_done(coordinator, store)
            except SimulatedCrash:
                store, coordinator = _crash_recover(device, seed)
        _pump_to_done(coordinator, store)
        assert all(store.get(key) == f"v{key}" for key in range(self.N))
        census = _ownership_census(store)
        for key, owners in census.items():
            assert owners == [store.router.owner(key)], key


# -- hypothesis: convergence under arbitrary crash/write interleavings -------------


class ReshardMachine(RuleBasedStateMachine):
    """Random puts/deletes/pumps/crashes; durable state must track the model.

    Every put/delete lands in the WAL before it is acknowledged, so the
    model is exact even across a crash: a lookup may degrade to MAYBE,
    but a stored key is never ABSENT and ``get`` never returns a stale
    or resurrected value once the migration completes.
    """

    KEYSPACE = 24

    def __init__(self):
        super().__init__()
        self.device = BlockDevice()
        self.clock = SimulatedClock()
        self.store = ShardedStore.create(self.device, 2, seed=7, clock=self.clock)
        self.coordinator = ReshardCoordinator(self.store, clock=self.clock)
        self.model: dict[int, str] = {}
        self.writes = 0
        self.splits = 0

    @rule(key=st.integers(0, KEYSPACE - 1), value=st.text("ab", max_size=3))
    def put(self, key, value):
        self.writes += 1
        stamp = f"{value}#{self.writes}"
        self.store.put(key, stamp)
        self.model[key] = stamp

    @rule(key=st.integers(0, KEYSPACE - 1))
    def delete(self, key):
        self.store.delete(key)
        self.model.pop(key, None)

    @precondition(lambda self: self.store.migration is None and self.splits < 2)
    @rule()
    def plan_split(self):
        self.splits += 1
        self.coordinator.plan_split()

    @precondition(lambda self: self.store.migration is not None)
    @rule()
    def pump(self):
        self.coordinator.pump(budget=0.5, force=True)

    @precondition(lambda self: self.store.migration is not None)
    @rule()
    def crash_and_recover(self):
        # Drop all in-memory state; the journal + WAL must reconstruct it.
        self.store = ShardedStore.recover(
            self.device, clock=SimulatedClock(), seed=7
        )
        self.coordinator = ReshardCoordinator.recover(self.store)
        self.store.scrub(repair=True)

    @invariant()
    def stored_keys_never_absent(self):
        for key, value in self.model.items():
            result = self.store.lookup(key)
            assert result.state is not Answer.ABSENT
            if result.state is Answer.PRESENT:
                assert result.value == value

    def teardown(self):
        guard = 0
        while self.store.migration is not None and guard < 10_000:
            guard += 1
            self.coordinator.pump(budget=0.5, force=True)
        assert self.store.migration is None
        for key in range(self.KEYSPACE):
            assert self.store.get(key) == self.model.get(key)
        census = _ownership_census(self.store)
        assert sorted(census) == sorted(self.model)
        for key, owners in census.items():
            assert owners == [self.store.router.owner(key)], key


TestReshardStateMachine = ReshardMachine.TestCase
TestReshardStateMachine.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)


# -- storm integration -------------------------------------------------------------


SHORT_STORM = (
    StormPhase("calm", 120, transient_read=0.0),
    StormPhase("storm", 150, transient_read=0.5, slowdown=3.0, spike_prob=0.05),
    StormPhase("recovery", 120, transient_read=0.0),
)


class TestReshardStorm:
    def _run(self, **kwargs):
        with use_registry():
            return run_reshard_storm(
                seed=kwargs.pop("seed", 0), n_keys=600, n_shards=3,
                phases=SHORT_STORM, reshard_at=80, **kwargs,
            )

    def test_migration_completes_with_zero_false_negatives(self):
        storm, reshard, _coordinator = self._run()
        assert storm.false_negatives == 0
        assert reshard.completed
        assert reshard.final_epoch == 1
        assert reshard.keys_moved > 0
        assert reshard.keys_verified >= reshard.keys_moved

    def test_crash_mid_backfill_recovers_and_completes(self):
        storm, reshard, _coordinator = self._run(crash_at_step="backfill:batch")
        assert storm.false_negatives == 0
        assert reshard.crashes == 1
        assert reshard.recoveries == 1
        assert reshard.completed

    def test_merge_storm_drops_a_shard(self):
        storm, reshard, coordinator = self._run(kind="merge")
        assert storm.false_negatives == 0
        assert reshard.completed
        assert len(reshard.final_shards) == 2

    def test_storm_is_reproducible(self):
        _s1, r1, _c1 = self._run(seed=3)
        _s2, r2, _c2 = self._run(seed=3)
        assert r1.as_dict() == r2.as_dict()
