"""Smoke tests: every example script must run end-to-end.

Examples are the public face of the library; these tests keep them green
as the API evolves.  Each runs in-process (importing by path) so failures
surface with real tracebacks.
"""

from __future__ import annotations

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def _load(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"example_{name[:-3]}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_all_examples_discovered(self):
        assert len(EXAMPLE_FILES) >= 6
        assert "quickstart.py" in EXAMPLE_FILES

    @pytest.mark.parametrize("name", EXAMPLE_FILES)
    def test_example_runs(self, name, capsys):
        module = _load(name)
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 100  # produced a real report
        assert "Traceback" not in out
