"""Tests for the static filters: XOR, XOR+, ribbon, and the prefix filter."""

from __future__ import annotations

import pytest

from repro.core.errors import ImmutableFilterError
from repro.filters.prefix import PrefixFilter
from repro.filters.ribbon import RibbonFilter
from repro.filters.xor import XorFilter, XorPlusFilter
from tests.conftest import measured_fpr


class TestXorFilter:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        xf = XorFilter(members, 8, seed=1)
        assert all(xf.may_contain(k) for k in members)

    def test_fpr_near_two_to_minus_f(self, medium_keys):
        members, negatives = medium_keys
        xf = XorFilter(members, 8, seed=1)
        assert measured_fpr(xf, negatives) <= 3 * 2**-8

    def test_space_factor(self, medium_keys):
        members, _ = medium_keys
        xf = XorFilter(members, 8, seed=1)
        assert 1.15 * 8 <= xf.bits_per_key <= 1.35 * 8

    def test_immutable(self):
        xf = XorFilter([1, 2, 3], 8)
        with pytest.raises(ImmutableFilterError):
            xf.insert(4)

    def test_build_classmethod(self):
        xf = XorFilter.build([1, 2, 3], 2**-8)
        assert xf.fingerprint_bits == 8
        assert all(xf.may_contain(k) for k in (1, 2, 3))

    def test_empty_and_tiny_sets(self):
        assert not XorFilter([], 8).may_contain(1)
        xf = XorFilter([42], 8)
        assert xf.may_contain(42)

    def test_string_keys(self):
        xf = XorFilter(["alpha", "beta"], 12)
        assert xf.may_contain("alpha") and xf.may_contain("beta")

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            XorFilter([1], 0)


class TestXorPlusFilter:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        xf = XorPlusFilter(members, 8, seed=1)
        assert all(xf.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        xf = XorPlusFilter(members, 8, seed=1)
        assert measured_fpr(xf, negatives) <= 3 * 2**-8

    def test_smaller_than_plain_xor(self, medium_keys):
        members, _ = medium_keys
        plain = XorFilter(members, 8, seed=1)
        plus = XorPlusFilter(members, 8, seed=1)
        assert plus.size_in_bits < plain.size_in_bits

    def test_agrees_with_uncompressed_inner(self, small_keys):
        members, negatives = small_keys
        plus = XorPlusFilter(members, 8, seed=2)
        for key in list(members) + list(negatives[:500]):
            assert plus.may_contain(key) == plus._inner.may_contain(key)

    def test_immutable(self):
        xf = XorPlusFilter([1, 2], 8)
        with pytest.raises(ImmutableFilterError):
            xf.insert(3)


class TestRibbonFilter:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        rf = RibbonFilter(members, 8, seed=1)
        assert all(rf.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        rf = RibbonFilter(members, 8, seed=1)
        assert measured_fpr(rf, negatives) <= 3 * 2**-8

    def test_space_close_to_optimal(self, medium_keys):
        # The ribbon's selling point: ~1.05·f bits/key, under XOR's 1.23·f.
        members, _ = medium_keys
        rf = RibbonFilter(members, 8, seed=1)
        assert rf.bits_per_key <= 1.12 * 8

    def test_immutable(self):
        rf = RibbonFilter([1], 8)
        with pytest.raises(ImmutableFilterError):
            rf.insert(2)

    def test_duplicate_keys_tolerated(self):
        rf = RibbonFilter([7, 7, 8], 8)
        assert rf.may_contain(7) and rf.may_contain(8)

    def test_build_classmethod(self):
        rf = RibbonFilter.build(["a", "b"], 0.01)
        assert rf.may_contain("a")


class TestPrefixFilter:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        pf = PrefixFilter(len(members), 0.01, seed=1)
        for key in members:
            pf.insert(key)
        assert all(pf.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        pf = PrefixFilter(len(members), 0.01, seed=1)
        for key in members:
            pf.insert(key)
        assert measured_fpr(pf, negatives) <= 0.03

    def test_spare_takes_small_fraction(self, medium_keys):
        members, _ = medium_keys
        pf = PrefixFilter(len(members), 0.01, seed=1)
        for key in members:
            pf.insert(key)
        assert pf.spare_fraction < 0.2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            PrefixFilter(0, 0.01)
        with pytest.raises(ValueError):
            PrefixFilter(10, 2.0)
