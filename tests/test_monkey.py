"""Tests for the Monkey closed-form allocation (§3.1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.analysis import monkey_allocation, uniform_allocation


def _memory_used(level_entries, fprs):
    ln_c = math.log(0.6185)
    return sum(
        n * math.log(p) / ln_c for n, p in zip(level_entries, fprs) if p < 1.0
    )


def _lookup_cost(fprs):
    return sum(fprs)


LEVELS = [100, 1000, 10_000, 100_000]


class TestMonkeyAllocation:
    def test_memory_budget_respected(self):
        budget = 8.0 * sum(LEVELS)
        fprs = monkey_allocation(LEVELS, budget)
        assert _memory_used(LEVELS, fprs) == pytest.approx(budget, rel=1e-6)

    def test_fpr_proportional_to_level_size(self):
        fprs = monkey_allocation(LEVELS, 10.0 * sum(LEVELS))
        for i in range(len(LEVELS) - 1):
            ratio = fprs[i + 1] / fprs[i]
            assert ratio == pytest.approx(LEVELS[i + 1] / LEVELS[i], rel=1e-6)

    def test_beats_uniform_at_equal_memory(self):
        budget = 8.0 * sum(LEVELS)
        monkey = monkey_allocation(LEVELS, budget)
        uniform = uniform_allocation(LEVELS, budget)
        assert _lookup_cost(monkey) < _lookup_cost(uniform)

    def test_beats_random_feasible_allocations(self):
        """No random feasible allocation should do better (optimality)."""
        budget = 6.0 * sum(LEVELS)
        best = _lookup_cost(monkey_allocation(LEVELS, budget))
        rng = np.random.default_rng(0)
        ln_c = math.log(0.6185)
        for _ in range(200):
            weights = rng.dirichlet(np.ones(len(LEVELS)))
            fprs = [
                min(1.0, math.exp(ln_c * budget * w / n))
                for w, n in zip(weights, LEVELS)
            ]
            assert _lookup_cost(fprs) >= best - 1e-9

    def test_water_filling_small_budget(self):
        # A tiny budget: the big level should get no filter (p = 1) while
        # small levels still get useful filters.
        fprs = monkey_allocation(LEVELS, 0.5 * sum(LEVELS))
        assert fprs[-1] == 1.0
        assert fprs[0] < 0.1
        # Remaining memory is still fully spent on the active levels.
        budget_used = _memory_used(LEVELS, fprs)
        assert budget_used == pytest.approx(0.5 * sum(LEVELS), rel=1e-6)

    def test_zero_budget(self):
        assert monkey_allocation(LEVELS, 0.0) == [1.0] * len(LEVELS)

    def test_empty_and_errors(self):
        assert monkey_allocation([], 100) == []
        with pytest.raises(ValueError):
            monkey_allocation([0], 100)
        with pytest.raises(ValueError):
            monkey_allocation([10], -1)

    def test_sum_of_fprs_converges_with_depth(self):
        """The O(ε) claim: adding deeper (smaller) levels barely moves the
        total FPR under Monkey, while uniform grows linearly."""
        budget_per_key = 10.0
        monkey_totals, uniform_totals = [], []
        for depth in (2, 4, 6):
            levels = [10 * 10**i for i in range(depth)]
            budget = budget_per_key * sum(levels)
            monkey_totals.append(_lookup_cost(monkey_allocation(levels, budget)))
            uniform_totals.append(_lookup_cost(uniform_allocation(levels, budget)))
        assert monkey_totals[-1] < 1.5 * monkey_totals[0]
        assert uniform_totals[-1] > 2.5 * uniform_totals[0]
