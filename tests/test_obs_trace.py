"""Tracing tests: span mechanics, the ring-buffer recorder, and the
end-to-end probe tree through ``LSMTree.get`` under fault injection."""

from __future__ import annotations

from repro import obs
from repro.adaptive.adaptive_cuckoo import AdaptiveCuckooFilter
from repro.adaptive.dictionary import FilteredDictionary
from repro.apps.lsm import LSMConfig, LSMTree
from repro.common.faults import FaultInjector, FaultyBlockDevice


class TestSpans:
    def test_noop_when_no_recorder(self):
        with obs.trace("a") as span:
            assert span.name == "<noop>"
        assert obs.current_span() is None

    def test_nesting_and_timing(self):
        with obs.use_recorder() as rec:
            with obs.trace("root", kind="t") as root:
                assert obs.current_span() is root
                with obs.trace("child"):
                    with obs.trace("grandchild"):
                        pass
                with obs.trace("sibling"):
                    pass
        assert len(rec) == 1
        (tree,) = rec.roots
        assert [s.name for s in tree.walk()] == [
            "root", "child", "grandchild", "sibling",
        ]
        for span in tree.walk():
            assert span.end >= span.start
            for child in span.children:
                assert child.start >= span.start
                assert child.end <= span.end

    def test_exception_tags_error_and_propagates(self):
        with obs.use_recorder() as rec:
            try:
                with obs.trace("boom"):
                    raise ValueError("x")
            except ValueError:
                pass
        assert rec.roots[0].tags["error"] == "ValueError"

    def test_ring_buffer_evicts_oldest(self):
        rec = obs.TraceRecorder(capacity=3)
        with obs.use_recorder(rec):
            for i in range(5):
                with obs.trace("op", i=i):
                    pass
        assert len(rec) == 3
        assert rec.recorded == 5
        assert [root.tags["i"] for root in rec.roots] == [2, 3, 4]

    def test_render_tree(self):
        with obs.use_recorder() as rec:
            with obs.trace("outer", key=1):
                with obs.trace("inner"):
                    pass
        text = obs.render_tree(rec.roots[0])
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "key=1" in lines[0]


class TestLSMTraceEndToEnd:
    def test_probe_tree_under_fault_injection(self):
        """One traced LSMTree.get shows filter probes, device reads, and
        retry attempts as a single consistent tree (the ISSUE-2 e2e gate)."""
        with obs.use_registry():
            injector = FaultInjector(seed=7, transient_read={"run": 0.35})
            device = FaultyBlockDevice(injector=injector)
            tree = LSMTree(
                LSMConfig(memtable_entries=32, retry_attempts=8, seed=1),
                device=device,
            )
            for i in range(400):
                tree.put(i, i)
            recorder = obs.TraceRecorder(capacity=4096)
            with obs.use_recorder(recorder):
                for i in range(400):
                    assert tree.get(i) == i
            roots = recorder.roots
            assert all(root.name == "lsm.get" for root in roots)

            probes = recorder.find("filter.probe")
            reads = recorder.find("device.read")
            retries = recorder.find("retry.attempt")
            assert probes and reads and retries

            # Retried reads exist (fault rate 0.35 over hundreds of reads)
            # and every retry span is a child of a device.read span.
            retried = [r for r in reads if len(r.find("retry.attempt")) > 1]
            assert retried
            for read in reads:
                for attempt in read.children:
                    assert attempt.name == "retry.attempt"

            # Parent/child timing is consistent across every recorded tree.
            for root in roots:
                for span in root.walk():
                    assert span.end >= span.start
                    for child in span.children:
                        assert child.start >= span.start
                        assert child.end <= span.end

            # Spans carry the tags the trace CLI prints.
            assert all("level" in p.tags and "run" in p.tags for p in probes)
            found_tags = {root.tags.get("found") for root in roots}
            assert found_tags == {True}

    def test_memtable_hit_produces_leaf_span(self):
        with obs.use_registry():
            tree = LSMTree(LSMConfig(memtable_entries=1000))
            tree.put(1, "v")
            with obs.use_recorder() as rec:
                assert tree.get(1) == "v"
            (root,) = rec.roots
            assert root.name == "lsm.get"
            assert root.children == []  # memtable hit: no probes, no reads


class TestDictionaryTelemetry:
    def test_adaptation_events_counted_and_traced(self):
        with obs.use_registry() as reg:
            filt = AdaptiveCuckooFilter.for_capacity(512, 0.05, seed=3)
            d = FilteredDictionary(filt)
            for k in range(200):
                d.put(k, k)
            rec = obs.TraceRecorder(capacity=8192)
            with obs.use_recorder(rec):
                for k in range(5000, 9000):
                    d.get(k)
            queries = reg.get("repro_dict_queries_total")
            fp = queries.labels(outcome="false_positive").value
            neg = queries.labels(outcome="negative").value
            assert fp == d.stats.false_positives > 0
            assert neg == 4000 - fp
            adaptations = reg.counter("repro_dict_adaptations_total").value
            assert adaptations == d.stats.adaptations_fed_back == fp
            adapt_spans = rec.find("filter.adapt")
            assert len(adapt_spans) == fp
            # adapt spans always nest under a dict.get root
            for root in rec.roots:
                assert root.name == "dict.get"
