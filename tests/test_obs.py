"""Tests for the repro.obs telemetry layer: registry, metric types,
histogram invariants (property-based), concurrency, instrumentation,
and exporter round-trips."""

from __future__ import annotations

import json
import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.common.storage import BlockDevice, IOStats
from repro.core.concurrent import ShardedFilter
from repro.core.registry import make_filter
from repro.filters.bloom import BloomFilter
from repro.obs.metrics import MetricError, _HistogramChild


@pytest.fixture()
def registry():
    with obs.use_registry() as reg:
        yield reg


class TestRegistry:
    def test_get_or_create_returns_same_metric(self, registry):
        a = registry.counter("repro_x_total", "help")
        b = registry.counter("repro_x_total")
        assert a is b

    def test_type_collision_rejected(self, registry):
        registry.counter("repro_x_total")
        with pytest.raises(MetricError):
            registry.gauge("repro_x_total")
        with pytest.raises(MetricError):
            registry.histogram("repro_x_total")

    def test_label_collision_rejected(self, registry):
        registry.counter("repro_x_total", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("repro_x_total", labels=("b",))

    def test_bucket_collision_rejected(self, registry):
        registry.histogram("repro_h", buckets=(1.0, 2.0))
        with pytest.raises(MetricError):
            registry.histogram("repro_h", buckets=(1.0, 3.0))

    def test_invalid_names_rejected(self, registry):
        for bad in ("0bad", "has space", "dash-ed", ""):
            with pytest.raises(MetricError):
                registry.counter(bad)
        with pytest.raises(MetricError):
            registry.counter("repro_ok_total", labels=("__reserved",))

    def test_counter_monotone(self, registry):
        c = registry.counter("repro_c_total")
        c.inc()
        c.inc(5)
        assert c.value == 6
        with pytest.raises(MetricError):
            c.inc(-1)

    def test_labelled_counter_requires_labels(self, registry):
        c = registry.counter("repro_c_total", labels=("kind",))
        with pytest.raises(MetricError):
            c.inc()
        with pytest.raises(MetricError):
            c.labels(wrong="x")
        c.labels(kind="a").inc(2)
        assert c.labels(kind="a").value == 2
        assert c.labels(kind="b").value == 0

    def test_gauge_goes_both_ways(self, registry):
        g = registry.gauge("repro_g")
        g.set(10)
        g.dec(3)
        g.inc(1)
        assert g.value == 8

    def test_default_registry_swap(self):
        outer = obs.default_registry()
        with obs.use_registry() as inner:
            assert obs.default_registry() is inner
            assert inner is not outer
        assert obs.default_registry() is outer


bucket_specs = st.tuples(
    st.floats(min_value=1e-9, max_value=1.0),
    st.floats(min_value=1.01, max_value=16.0),
    st.integers(min_value=1, max_value=40),
)


class TestHistogramProperties:
    @given(spec=bucket_specs)
    def test_log_bucket_bounds_strictly_monotone(self, spec):
        start, growth, count = spec
        bounds = obs.log_buckets(start, growth, count)
        assert len(bounds) == count
        assert all(a < b for a, b in zip(bounds, bounds[1:]))

    @given(values=st.lists(st.floats(min_value=0, max_value=1e6), max_size=200))
    @settings(max_examples=50)
    def test_sum_count_invariants(self, values):
        h = _HistogramChild(obs.DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        assert h.count == len(values) == sum(h.counts)
        assert h.sum == pytest.approx(math.fsum(values))

    @given(
        left=st.lists(st.floats(min_value=0, max_value=1e6), max_size=100),
        right=st.lists(st.floats(min_value=0, max_value=1e6), max_size=100),
    )
    @settings(max_examples=50)
    def test_merge_equals_observing_concatenation(self, left, right):
        a = _HistogramChild(obs.DEFAULT_BUCKETS)
        b = _HistogramChild(obs.DEFAULT_BUCKETS)
        both = _HistogramChild(obs.DEFAULT_BUCKETS)
        for v in left:
            a.observe(v)
        for v in right:
            b.observe(v)
        for v in left + right:
            both.observe(v)
        a.merge(b)
        assert a.counts == both.counts
        assert a.count == both.count
        assert a.sum == pytest.approx(both.sum)

    @given(values=st.lists(st.floats(min_value=1e-9, max_value=1e6), min_size=1,
                           max_size=100))
    @settings(max_examples=50)
    def test_quantile_bounds_true_value(self, values):
        # The p100 estimate (upper bucket bound) never under-reports the max.
        h = _HistogramChild(obs.DEFAULT_BUCKETS)
        for v in values:
            h.observe(v)
        assert h.quantile(1.0) >= max(values)
        assert h.quantile(0.0) <= h.quantile(0.5) <= h.quantile(1.0)

    def test_merge_rejects_different_buckets(self):
        a = _HistogramChild((1.0, 2.0))
        b = _HistogramChild((1.0, 3.0))
        with pytest.raises(MetricError):
            a.merge(b)

    def test_empty_quantile_is_zero(self):
        assert _HistogramChild(obs.DEFAULT_BUCKETS).quantile(0.9) == 0.0


class TestConcurrency:
    def test_no_lost_counter_increments_under_threads(self, registry):
        c = registry.counter("repro_threads_total")
        n_threads, per_thread = 8, 2000

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == n_threads * per_thread

    def test_sharded_filter_probes_not_lost(self, registry):
        # Concurrent inserts + probes through the repro.core.concurrent
        # executor path must account every operation exactly once.
        sharded = ShardedFilter(
            lambda i: BloomFilter(4096, 0.01, seed=i), n_shards=4
        )
        filt = obs.InstrumentedFilter(sharded, name="sharded-bloom")
        n_threads, per_thread = 6, 500

        def worker(tid):
            base = tid * per_thread
            for i in range(per_thread):
                filt.insert(base + i)
                filt.may_contain(base + i)

        threads = [
            threading.Thread(target=worker, args=(tid,)) for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total = n_threads * per_thread
        assert filt.probes == total
        assert filt.positives == total  # no false negatives, by contract
        probes = registry.get("repro_filter_probes_total")
        assert probes.labels(filter="sharded-bloom", result="positive").value == total


class TestInstrumentedFilter:
    def test_counts_and_fp_classification(self, registry):
        members = set(range(200))
        filt = obs.InstrumentedFilter(
            BloomFilter(200, 0.05, seed=1), name="b", ground_truth=members
        )
        for k in members:
            filt.insert(k)
        for k in range(200):
            assert filt.may_contain(k)
        fp = sum(1 for k in range(10_000, 14_000) if filt.may_contain(k))
        assert filt.positives == 200 + fp
        assert filt.false_positives == fp
        assert filt.probes == 200 + 4000
        assert filt.observed_fp_rate == pytest.approx(fp / 4000)
        assert registry.histogram("repro_filter_insert_seconds",
                                  labels=("filter",)).labels(filter="b").count == 200

    def test_forwards_protocol_surface(self, registry):
        inner = make_filter("quotient", capacity=256, epsilon=0.01)
        filt = obs.InstrumentedFilter(inner)
        filt.insert("hello")
        assert "hello" in filt
        assert len(filt) == 1
        assert filt.size_in_bits == inner.size_in_bits
        assert filt.bits_per_key == inner.bits_per_key
        assert filt.supports_deletes  # forwarded via __getattr__
        filt.delete("hello")
        assert len(filt) == 0

    def test_make_filter_instrument_hook(self, registry):
        filt = make_filter("cuckoo", capacity=128, epsilon=0.01, instrument=True)
        assert isinstance(filt, obs.InstrumentedFilter)
        assert filt.name == "cuckoo"
        filt.insert(7)
        filt.may_contain(7)
        probes = registry.get("repro_filter_probes_total")
        assert probes.labels(filter="cuckoo", result="positive").value == 1

    def test_instrument_idempotent(self, registry):
        filt = obs.instrument(BloomFilter(64, 0.01))
        assert obs.instrument(filt) is filt


class TestExporters:
    def _populated(self, registry):
        c = registry.counter("repro_events_total", "events", labels=("kind",))
        c.labels(kind="a").inc(3)
        c.labels(kind='quote"comma,').inc()  # escaping stress
        registry.gauge("repro_ratio", "a ratio").set(0.25)
        h = registry.histogram("repro_lat_seconds", "latency")
        for v in (1e-6, 3e-4, 0.002, 0.002, 1.5):
            h.observe(v)
        return registry

    def test_prometheus_round_trip(self, registry):
        self._populated(registry)
        text = obs.to_prometheus(registry)
        assert "# TYPE repro_events_total counter" in text
        assert "# TYPE repro_lat_seconds histogram" in text
        assert 'le="+Inf"' in text
        assert obs.parse_prometheus(text) == obs.flat_samples(registry)

    def test_prometheus_histogram_buckets_cumulative(self, registry):
        self._populated(registry)
        parsed = obs.parse_prometheus(obs.to_prometheus(registry))
        buckets = parsed["repro_lat_seconds_bucket"]
        series = sorted(buckets.items(), key=lambda kv: (
            math.inf if kv[0][0][1] == "+Inf" else float(kv[0][0][1])
        ))
        values = [v for _, v in series]
        assert values == sorted(values)  # cumulative → monotone
        assert values[-1] == parsed["repro_lat_seconds_count"][()] == 5

    def test_json_round_trip(self, registry):
        self._populated(registry)
        text = obs.to_json(registry)
        rebuilt = obs.from_json(text)
        assert rebuilt.snapshot() == registry.snapshot()
        assert json.loads(text)["repro_ratio"]["kind"] == "gauge"

    def test_render_table_mentions_quantiles(self, registry):
        self._populated(registry)
        table = obs.render_table(registry)
        assert "repro_events_total{kind=\"a\"}" in table
        assert "p50=" in table and "p99=" in table

    def test_selftest_clean_registry(self, registry):
        self._populated(registry)
        assert obs.selftest(registry) == []

    def test_selftest_flags_nan_gauge(self, registry):
        registry.gauge("repro_bad").set(float("nan"))
        assert any("NaN" in f for f in obs.selftest(registry))


class TestIOStats:
    def test_as_dict_is_single_source_of_truth(self):
        s = IOStats(reads=1, writes=2, bytes_read=3, bytes_written=4,
                    busy_seconds=0.5)
        assert s.as_dict() == {
            "reads": 1, "writes": 2, "bytes_read": 3, "bytes_written": 4,
            "busy_seconds": 0.5,
        }
        assert (s + s).as_dict() == {k: 2 * v for k, v in s.as_dict().items()}
        assert (s - s).as_dict() == {k: 0 for k in s.as_dict()}
        snap = s.snapshot()
        s.reset()
        assert all(v == 0 for v in s.as_dict().values())
        assert snap.as_dict()["bytes_written"] == 4  # snapshot unaffected

    def test_device_stats_mirrored_to_default_registry(self):
        with obs.use_registry() as reg:
            dev = BlockDevice()
            dev.write("a", b"xyz")
            dev.read("a")
            dev.read("a")
            assert reg.counter("repro_device_writes_total").value == 1
            assert reg.counter("repro_device_reads_total").value == 2
            assert reg.counter("repro_device_bytes_read_total").value == 6
            assert dev.stats.reads == 2  # legacy stats still accrue

    def test_device_rebinds_on_registry_swap(self):
        dev = BlockDevice()
        with obs.use_registry() as first:
            dev.write("a", b"x")
        with obs.use_registry() as second:
            dev.write("b", b"x")
            assert second.counter("repro_device_writes_total").value == 1
        assert first.counter("repro_device_writes_total").value == 1


class TestEmptyFilterBitsPerKey:
    @pytest.mark.parametrize("name", ["bloom", "quotient", "cuckoo", "cqf"])
    def test_zero_not_nan(self, name):
        filt = make_filter(name, capacity=64, epsilon=0.01)
        assert filt.bits_per_key == 0.0
        assert not math.isnan(filt.bits_per_key)
