"""Tests for circular log, joins, and the networking blocklists (§3.1, §3.3)."""

from __future__ import annotations

import pytest

from repro.apps.blocklist import AdaptiveBlocklist, Blocklist, StaticNoListBlocklist
from repro.apps.circlog import CircularLogStore
from repro.apps.joins import filtered_join, unfiltered_join
from repro.core.errors import DeletionError
from repro.filters.bloom import BloomFilter
from repro.filters.cuckoo import CuckooFilter
from repro.filters.xor import XorFilter
from repro.workloads.urls import split_malicious, url_query_stream, url_universe


class TestCircularLog:
    def test_put_get(self):
        store = CircularLogStore(seed=1)
        store.put("a", 1)
        store.put("b", 2)
        assert store.get("a") == 1
        assert store.get("b") == 2
        assert store.get("c") is None

    def test_update_supersedes(self):
        store = CircularLogStore(seed=1)
        store.put("k", 1)
        store.put("k", 2)
        assert store.get("k") == 2
        assert store.live_records == 1
        assert store.log_records == 2  # old version still occupies the log

    def test_delete(self):
        store = CircularLogStore(seed=1)
        store.put("k", 1)
        store.delete("k")
        assert store.get("k") is None
        with pytest.raises(DeletionError):
            store.delete("k")

    def test_gc_reclaims_dead_records(self):
        store = CircularLogStore(seed=1, segment_records=64)
        for i in range(64):
            store.put(f"key{i % 8}", i)  # heavy overwrites: mostly dead
        live_before = store.live_records
        relocated = store.gc()
        assert relocated == live_before  # only live records move
        assert store.log_records == live_before
        for i in range(8):
            assert store.get(f"key{i}") == 56 + i

    def test_maplet_expands_with_log(self):
        store = CircularLogStore(initial_capacity=32, seed=2)
        for i in range(500):
            store.put(i, i * 2)
        assert store.get(123) == 246
        assert store.maplet._qf.n_slots > 64  # expanded past initial size

    def test_lookup_single_io_mostly(self):
        store = CircularLogStore(seed=3)
        for i in range(300):
            store.put(i, i)
        store.stats.lookup_ios = 0
        store.stats.lookups = 0
        for i in range(300):
            assert store.get(i) == i
        assert store.stats.lookup_ios / store.stats.lookups < 1.3


class TestJoins:
    @pytest.fixture(scope="class")
    def tables(self):
        build = [(k, f"b{k}") for k in range(0, 1000, 10)]  # 100 rows
        probe = [(k, f"p{k}") for k in range(5000)]  # 2% selectivity
        return build, probe

    def test_results_match_unfiltered(self, tables):
        build, probe = tables
        expected, _ = unfiltered_join(build, probe)
        for factory in (
            lambda keys: BloomFilter.from_keys(keys, 0.01, seed=1),
            lambda keys: XorFilter.build(keys, 0.01, seed=1),
        ):
            got, _ = filtered_join(build, probe, factory)
            assert sorted(got) == sorted(expected)

    def test_cuckoo_filtered_join(self, tables):
        build, probe = tables

        def factory(keys):
            cf = CuckooFilter.for_capacity(len(keys), 0.01, seed=2)
            for key in keys:
                cf.insert(key)
            return cf

        got, stats = filtered_join(build, probe, factory)
        expected, _ = unfiltered_join(build, probe)
        assert sorted(got) == sorted(expected)
        assert stats.shipping_reduction > 0.9

    def test_shipping_reduction_tracks_selectivity(self, tables):
        build, probe = tables
        _, stats = filtered_join(
            build, probe, lambda keys: BloomFilter.from_keys(keys, 0.01, seed=1)
        )
        # 2% of rows qualify; the filter should discard ~98% minus FPs.
        assert stats.shipping_reduction > 0.95
        assert stats.false_passes <= 0.02 * stats.probe_rows

    def test_unfiltered_ships_everything(self, tables):
        build, probe = tables
        _, stats = unfiltered_join(build, probe)
        assert stats.rows_passed_filter == stats.probe_rows


class TestBlocklists:
    @pytest.fixture(scope="class")
    def workload(self):
        urls = url_universe(2000, seed=61)
        malicious, benign = split_malicious(urls, 0.2, seed=62)
        stream = url_query_stream(
            benign, malicious, 20_000, malicious_rate=0.05, skew=1.2, seed=63
        )
        return malicious, benign, stream

    def _run(self, blocklist, stream):
        for url, is_malicious in stream:
            blocklist.handle(url, is_malicious)
        return blocklist.stats

    def test_no_missed_malicious_ever(self, workload):
        malicious, _, stream = workload
        for bl in (
            Blocklist(malicious, epsilon=0.02, seed=1),
            AdaptiveBlocklist(malicious, epsilon=0.02, seed=1),
        ):
            stats = self._run(bl, stream)
            assert stats.missed_malicious == 0
            assert stats.blocked_malicious > 0

    def test_plain_blocklist_repeats_false_blocks(self, workload):
        malicious, _, stream = workload
        stats = self._run(Blocklist(malicious, epsilon=0.05, seed=2), stream)
        # Zipf-hot benign URLs keep re-hitting the same FPs.
        assert stats.false_blocks > 0

    def test_static_no_list_protects_hot_urls(self, workload):
        malicious, benign, stream = workload
        plain = self._run(Blocklist(malicious, epsilon=0.05, seed=3), stream)
        # Protect the hottest benign URLs (Zipf rank order = list order).
        protected = benign[:200]
        nolist = self._run(
            StaticNoListBlocklist(malicious, protected, epsilon=0.05, seed=3), stream
        )
        assert nolist.false_blocks <= plain.false_blocks

    def test_adaptive_eliminates_repeat_false_blocks(self, workload):
        malicious, _, stream = workload
        plain = self._run(Blocklist(malicious, epsilon=0.05, seed=4), stream)
        adaptive = self._run(AdaptiveBlocklist(malicious, epsilon=0.05, seed=4), stream)
        if plain.false_blocks:
            assert adaptive.false_blocks < plain.false_blocks

    def test_no_list_rejects_malicious_entries(self, workload):
        malicious, _, _ = workload
        with pytest.raises(ValueError):
            StaticNoListBlocklist(malicious, [malicious[0]], seed=5)
