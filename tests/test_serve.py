"""Serving-layer tests: deadlines, breakers, admission, chaos storms.

The contract under test (docs/robustness.md): every degraded path — shed,
timed-out, run-unreachable — answers the conservative MAYBE, so the
one-sided-error guarantee (no false negatives) survives any storm; the
circuit breaker's state machine only ever takes legal transitions; and
shedding is priority-ordered and bounded.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.apps.lsm import LSMConfig, LSMTree
from repro.adaptive.dictionary import FilteredDictionary
from repro.common.clock import Answer, Deadline, DeadlineExceeded, SimulatedClock
from repro.common.faults import (
    CircuitOpenError,
    FaultInjector,
    FaultyBlockDevice,
    LatencyInjector,
    RetryPolicy,
    TransientIOError,
)
from repro.filters.bloom import BloomFilter
from repro.obs import use_registry
from repro.serve import (
    CALM_STORM_RECOVERY,
    AdmissionConfig,
    AdmissionController,
    BreakerDevice,
    BreakerState,
    CircuitBreaker,
    Priority,
    ServedFilter,
    ServeOutcome,
    StormPhase,
    build_stack,
    run_storm,
)


class TestClockAndDeadline:
    def test_clock_advances_monotonically(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(1.0) == 1.5  # no-op: already past
        assert clock.advance_to(2.0) == 2.0
        with pytest.raises(ValueError):
            clock.advance(-0.1)

    def test_deadline_expiry(self):
        clock = SimulatedClock()
        deadline = Deadline.after(clock, 0.5)
        assert not deadline.expired()
        assert deadline.remaining() == pytest.approx(0.5)
        clock.advance(0.5)
        assert deadline.expired()
        with pytest.raises(ValueError):
            Deadline.after(clock, -1.0)

    def test_deadline_exceeded_carries_partial(self):
        err = DeadlineExceeded("late", partial=[1, 2])
        assert isinstance(err, TimeoutError)
        assert err.partial == [1, 2]


class TestCircuitBreakerUnit:
    def _breaker(self, **kwargs):
        clock = SimulatedClock()
        defaults = dict(window=8, failure_threshold=0.5, min_samples=4,
                        cooldown=1.0, half_open_probes=2)
        defaults.update(kwargs)
        return CircuitBreaker(clock, **defaults), clock

    def test_trips_at_windowed_failure_rate(self):
        breaker, _clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED  # below min_samples
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_successes_dilute_the_window(self):
        breaker, _clock = self._breaker()
        for _ in range(6):
            breaker.record_success()
        for _ in range(3):
            breaker.record_failure()
        # 3 failures over a window of 8 entries (5 oldest successes kept)
        # is below the 0.5 threshold.
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN

    def test_open_fast_fails_until_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()
        clock.advance(0.99)
        assert not breaker.allow()
        clock.advance(0.01)
        assert breaker.allow()
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_recovers_after_probe_successes(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        # The sick window was cleared: one new failure must not re-trip.
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_failure_reopens_and_rearms_cooldown(self):
        breaker, clock = self._breaker()
        for _ in range(4):
            breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow()  # cooldown restarted at the re-open
        clock.advance(1.0)
        assert breaker.allow()

    def test_call_wraps_outcomes(self):
        breaker, clock = self._breaker(min_samples=2, window=2)
        assert breaker.call(lambda: 42) == 42
        with pytest.raises(TransientIOError):
            breaker.call(self._boom)  # [success, failure]: rate 0.5 trips
        assert breaker.state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: 42)
        clock.advance(1.0)
        assert breaker.call(lambda: 42) == 42  # half-open probe succeeds

    @staticmethod
    def _boom():
        raise TransientIOError("injected")

    def test_rejects_bad_parameters(self):
        clock = SimulatedClock()
        with pytest.raises(ValueError):
            CircuitBreaker(clock, failure_threshold=0.0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, window=0)
        with pytest.raises(ValueError):
            CircuitBreaker(clock, cooldown=-1.0)


class TestBreakerDevice:
    def _device(self):
        clock = SimulatedClock()
        injector = FaultInjector(seed=0)
        faulty = FaultyBlockDevice(injector=injector)
        device = BreakerDevice(faulty, clock, min_samples=2, window=4,
                               cooldown=0.1, half_open_probes=1)
        return device, clock, injector

    def test_one_breaker_per_address_and_isolation(self):
        device, _clock, injector = self._device()
        device.write(("run", 1), b"a")
        device.write(("run", 2), b"b")
        injector.transient_read = {"run": 1.0, "*": 0.0}
        for _ in range(2):
            with pytest.raises(TransientIOError):
                device.read(("run", 1))
        # Only run 1's breaker tripped; run 2 is still served (its read
        # fails transiently here, but through its own closed breaker).
        assert device.breaker_for(("run", 1)).state is BreakerState.OPEN
        with pytest.raises(CircuitOpenError):
            device.read(("run", 1))
        assert device.breaker_for(("run", 2)).state is BreakerState.CLOSED
        injector.transient_read = 0.0
        assert device.read(("run", 2)) == b"b"

    def test_open_breaker_recovers_via_probe(self):
        device, clock, injector = self._device()
        device.write(("run", 1), b"a")
        injector.transient_read = 1.0
        for _ in range(2):
            with pytest.raises(TransientIOError):
                device.read(("run", 1))
        injector.transient_read = 0.0
        with pytest.raises(CircuitOpenError):
            device.read(("run", 1))  # still cooling down
        clock.advance(0.1)
        assert device.read(("run", 1)) == b"a"  # half-open probe closes
        assert device.breaker_for(("run", 1)).state is BreakerState.CLOSED
        assert device.n_transitions(BreakerState.CLOSED) == 1

    def test_writes_pass_through_unguarded(self):
        device, _clock, injector = self._device()
        injector.transient_read = 1.0
        device.write(("run", 1), b"a")  # never breaker-guarded
        assert device.exists(("run", 1))
        assert len(device) == 1


LEGAL_TRANSITIONS = {
    (BreakerState.CLOSED, BreakerState.OPEN),
    (BreakerState.OPEN, BreakerState.HALF_OPEN),
    (BreakerState.HALF_OPEN, BreakerState.OPEN),
    (BreakerState.HALF_OPEN, BreakerState.CLOSED),
}


class BreakerMachine(RuleBasedStateMachine):
    """Random success/failure/clock interleavings against the breaker's
    documented state machine, including half-open probe races (a failure
    landing mid-probe-round must re-open and re-arm the cooldown)."""

    def __init__(self):
        super().__init__()
        self.clock = SimulatedClock()
        self.breaker = CircuitBreaker(
            self.clock, window=8, failure_threshold=0.5,
            min_samples=3, cooldown=0.5, half_open_probes=2,
        )
        self.last_allow_time: float | None = None

    @rule(dt=st.floats(min_value=0.0, max_value=0.7))
    def advance(self, dt):
        self.clock.advance(dt)

    @rule()
    def request(self):
        allowed = self.breaker.allow()
        if self.breaker.state is BreakerState.OPEN:
            # The one hard liveness/safety pair: open breakers refuse
            # requests, and refusal can only happen inside the cooldown.
            assert not allowed
            assert (self.clock.now() - self.breaker._opened_at
                    < self.breaker.cooldown)
        else:
            assert allowed

    @rule()
    def succeed(self):
        before = self.breaker.state
        self.breaker.record_success()
        if before is BreakerState.OPEN:
            assert self.breaker.state is BreakerState.OPEN

    @rule()
    def fail(self):
        before = self.breaker.state
        self.breaker.record_failure()
        if before is BreakerState.HALF_OPEN:
            assert self.breaker.state is BreakerState.OPEN
        elif self.breaker.state is BreakerState.CLOSED:
            # The trip condition is evaluated on every failure: staying
            # closed means the window is genuinely below the trip point.
            assert (self.breaker.samples() < self.breaker.min_samples
                    or self.breaker.failure_rate()
                    < self.breaker.failure_threshold)

    @precondition(lambda self: self.breaker.state is BreakerState.HALF_OPEN)
    @rule(outcomes=st.lists(st.booleans(), min_size=1, max_size=4))
    def probe_round(self, outcomes):
        """A half-open probe round: successes close only when
        ``half_open_probes`` of them land *consecutively*."""
        streak = 0
        for ok in outcomes:
            if self.breaker.state is not BreakerState.HALF_OPEN:
                break
            if ok:
                self.breaker.record_success()
                streak += 1
                if streak >= self.breaker.half_open_probes:
                    assert self.breaker.state is BreakerState.CLOSED
            else:
                self.breaker.record_failure()
                assert self.breaker.state is BreakerState.OPEN

    @invariant()
    def transitions_are_legal(self):
        for _t, src, dst in self.breaker.transitions:
            assert (src, dst) in LEGAL_TRANSITIONS

    @invariant()
    def transition_times_are_monotone(self):
        times = [t for t, _src, _dst in self.breaker.transitions]
        assert times == sorted(times)

    @invariant()
    def open_breakers_have_an_open_transition(self):
        if self.breaker.state is BreakerState.OPEN:
            assert self.breaker.transitions
            assert self.breaker.transitions[-1][2] is BreakerState.OPEN


TestBreakerStateMachine = BreakerMachine.TestCase
TestBreakerStateMachine.settings = settings(max_examples=40, deadline=None)


def _latency_tree(n_keys=300, *, base=0.001, fault_rate=0.0, seed=0,
                  filter_policy="monkey", compaction="leveling"):
    """An LSM-tree over a faulty+slow device on a simulated clock."""
    clock = SimulatedClock()
    injector = FaultInjector(seed=seed)
    latency = LatencyInjector(seed=seed, base=base)
    latency.slowdown = 0.0
    device = FaultyBlockDevice(injector=injector, latency=latency, clock=clock)
    config = LSMConfig(memtable_entries=32, retry_attempts=2, seed=seed,
                       filter_policy=filter_policy, compaction=compaction)
    tree = LSMTree(config, device=device)
    tree.retry = RetryPolicy(max_attempts=2, jitter="decorrelated",
                             base_backoff=1e-4, max_backoff=1e-3,
                             seed=seed, clock=clock)
    for key in range(n_keys):
        tree.put(key, key * 10)
    latency.slowdown = 1.0
    injector.transient_read = {"run": fault_rate, "filter": fault_rate, "*": 0.0}
    return tree, clock, injector, latency


class TestLSMDeadlines:
    def test_no_deadline_is_unchanged(self):
        tree, _clock, _inj, _lat = _latency_tree()
        assert tree.get(7) == 70
        assert tree.get(10_000, default="missing") == "missing"

    def test_expired_deadline_degrades_to_maybe(self):
        tree, clock, _inj, _lat = _latency_tree()
        dead = Deadline.after(clock, 0.0)
        result = tree.lookup(5, deadline=dead)
        assert result.state is Answer.MAYBE
        assert not result.complete and result.reason == "deadline"
        with pytest.raises(DeadlineExceeded):
            tree.get(5, deadline=dead)

    def test_memtable_hits_beat_any_deadline(self):
        # Keys still in the memtable resolve without touching the device,
        # so even a nearly-exhausted budget serves them authoritatively.
        tree, clock, _inj, _lat = _latency_tree(n_keys=10)  # all in memtable
        result = tree.lookup(3, deadline=Deadline.after(clock, 1e-12))
        assert result.state is Answer.PRESENT and result.value == 30

    def test_mid_scan_expiry_abandons_remaining_runs(self):
        # With filters off, an absent key probes every run; a budget that
        # covers roughly one device read must cut the scan short.
        tree, clock, _inj, _lat = _latency_tree(filter_policy="none",
                                                compaction="tiering")
        full = tree.lookup(10_000)
        assert full.state is Answer.ABSENT and full.runs_probed >= 2
        result = tree.lookup(10_000, deadline=Deadline.after(clock, 0.0015))
        assert result.state is Answer.MAYBE and result.reason == "deadline"
        assert result.runs_probed < full.runs_probed

    def test_complete_scan_within_budget_is_authoritative(self):
        tree, clock, _inj, _lat = _latency_tree()
        result = tree.lookup(5, deadline=Deadline.after(clock, 10.0))
        assert result.state is Answer.PRESENT
        assert result.complete and result.value == 50

    def test_unreachable_run_degrades_not_raises(self):
        tree, _clock, injector, _lat = _latency_tree()
        injector.transient_read = {"run": 1.0, "*": 0.0}
        target = next(k for k in (5, 6, 7) if k not in tree._memtable)
        with pytest.raises(TransientIOError):
            tree.lookup(target)
        result = tree.lookup(target, degrade_on_error=True)
        assert result.state is Answer.MAYBE
        assert result.reason == "unavailable" and result.runs_skipped >= 1
        injector.transient_read = 0.0
        assert tree.get(target) == target * 10  # device healed: authoritative again

    def test_multi_get_deadline_raises_with_partial(self):
        tree, clock, _inj, _lat = _latency_tree(filter_policy="none",
                                                compaction="tiering")
        keys = [1, 2, 3, 10_001, 10_002]
        with pytest.raises(DeadlineExceeded) as excinfo:
            tree.multi_get(keys, deadline=Deadline.after(clock, 1e-9))
        assert isinstance(excinfo.value.partial, list)
        assert tree.multi_get(keys, default=None)[:3] == [10, 20, 30]


class TestDictionaryDeadlines:
    def _dictionary(self, seed=0):
        clock = SimulatedClock()
        injector = FaultInjector(seed=seed)
        latency = LatencyInjector(seed=seed, base=0.001)
        device = FaultyBlockDevice(injector=injector, latency=latency, clock=clock)
        d = FilteredDictionary(BloomFilter(512, 0.01, seed=seed), device=device)
        for key in range(100):
            d.put(key, f"v{key}")
        return d, clock, injector

    def test_expired_deadline_is_maybe(self):
        d, clock, _inj = self._dictionary()
        result = d.lookup(5, deadline=Deadline.after(clock, 0.0))
        assert result.state is Answer.MAYBE and result.reason == "deadline"
        with pytest.raises(DeadlineExceeded):
            d.get(5, deadline=Deadline.after(clock, 0.0))

    def test_filter_negative_is_authoritative_even_late(self):
        # A filter negative costs no device read — it resolves instantly
        # and stays an authoritative ABSENT under any live deadline.
        d, clock, _inj = self._dictionary()
        absent = next(k for k in range(10_000, 11_000)
                      if not d.filter.may_contain(k))
        result = d.lookup(absent, deadline=Deadline.after(clock, 1e-9))
        assert result.state is Answer.ABSENT and result.complete

    def test_late_read_reports_maybe(self):
        d, clock, _inj = self._dictionary()
        # Budget smaller than one device read: the read lands but late.
        result = d.lookup(5, deadline=Deadline.after(clock, 1e-5))
        assert result.state is Answer.MAYBE and result.reason == "deadline"
        assert not result.complete

    def test_unreachable_device_degrades(self):
        d, _clock, injector = self._dictionary()
        injector.transient_read = 1.0
        with pytest.raises(TransientIOError):
            d.lookup(5)
        result = d.lookup(5, degrade_on_error=True)
        assert result.state is Answer.MAYBE and result.reason == "unavailable"

    def test_get_many_deadline_carries_partial(self):
        d, clock, _inj = self._dictionary()
        with pytest.raises(DeadlineExceeded) as excinfo:
            d.get_many([1, 2, 3, 4], deadline=Deadline.after(clock, 1.5e-3))
        partial = excinfo.value.partial
        assert isinstance(partial, list) and len(partial) == 4
        assert partial[0] == "v1"  # the first read fit the budget


class TestAdmission:
    def test_fresh_requests_admitted(self):
        clock = SimulatedClock()
        ctrl = AdmissionController(clock)
        decision = ctrl.admit(clock.now(), Priority.NORMAL)
        assert decision.admitted and decision.queue_delay == 0.0

    def test_sheds_low_priority_first(self):
        clock = SimulatedClock()
        ctrl = AdmissionController(clock)
        arrival = clock.now()
        clock.advance(0.05)  # between LOW (0.030) and NORMAL (0.080) budgets
        assert not ctrl.admit(arrival, Priority.LOW).admitted
        assert ctrl.admit(arrival, Priority.NORMAL).admitted
        assert ctrl.admit(arrival, Priority.HIGH).admitted
        clock.advance(0.10)  # 0.15 total: only HIGH (0.200) survives
        assert not ctrl.admit(arrival, Priority.NORMAL).admitted
        assert ctrl.admit(arrival, Priority.HIGH).admitted

    def test_backlog_bound_sheds_even_high(self):
        clock = SimulatedClock()
        ctrl = AdmissionController(
            clock, AdmissionConfig(queue_capacity=10, initial_service=0.001,
                                   delay_budgets={Priority.HIGH: 10.0,
                                                  Priority.NORMAL: 10.0,
                                                  Priority.LOW: 10.0})
        )
        arrival = clock.now()
        clock.advance(0.05)  # backlog estimate: 0.05 / 0.001 = 50 > 10
        decision = ctrl.admit(arrival, Priority.HIGH)
        assert not decision.admitted and decision.reason == "queue_full"

    def test_ewma_tracks_service_time(self):
        clock = SimulatedClock()
        ctrl = AdmissionController(clock)
        for _ in range(200):
            ctrl.record_service(0.05)
        assert ctrl.service_ewma == pytest.approx(0.05, rel=1e-3)

    def test_shed_rate_accounting(self):
        clock = SimulatedClock()
        ctrl = AdmissionController(clock)
        arrival = clock.now()
        assert ctrl.admit(arrival, Priority.LOW).admitted
        clock.advance(1.0)
        assert not ctrl.admit(arrival, Priority.LOW).admitted
        assert ctrl.stats.shed_rate() == pytest.approx(0.5)


class TestServedFilter:
    def _served(self, **kwargs):
        with use_registry():
            return build_stack(seed=3, n_keys=400, **kwargs)

    def test_query_unpacks_to_answer_and_outcome(self):
        served, *_rest = self._served()
        answer, outcome = served.query(7)
        assert answer is Answer.PRESENT and outcome is ServeOutcome.SERVED

    def test_absent_key_served_absent(self):
        served, *_rest = self._served()
        response = served.query(999_999)
        assert response.answer is Answer.ABSENT
        assert response.outcome is ServeOutcome.SERVED

    def test_expired_budget_times_out_with_maybe(self):
        served, _tree, _device, _inj, _lat, clock = self._served()
        # Queued 0.1 s: within HIGH's admission budget but past the
        # request's own 1 ms deadline — admitted, then timed out.
        response = served.serve(7, deadline=0.001, priority=Priority.HIGH,
                                arrival=clock.now() - 0.1)
        assert response.outcome is ServeOutcome.TIMED_OUT
        assert response.answer is Answer.MAYBE
        assert response.runs_probed == 0  # no work wasted on a dead request

    def test_shed_request_answers_maybe(self):
        served, _tree, _device, _inj, _lat, clock = self._served()
        response = served.serve(
            7, priority=Priority.LOW, arrival=clock.now() - 0.05
        )
        assert response.outcome is ServeOutcome.SHED
        assert response.answer is Answer.MAYBE

    def test_storm_degrades_present_key_to_maybe_not_absent(self):
        served, _tree, _device, injector, _lat, _clock = self._served()
        injector.transient_read = {"run": 1.0, "filter": 1.0, "*": 0.0}
        for key in range(200, 240):
            response = served.query(key, deadline=10.0)
            assert response.answer in (Answer.PRESENT, Answer.MAYBE)
            if response.answer is Answer.MAYBE:
                assert response.outcome in (ServeOutcome.DEGRADED,
                                            ServeOutcome.TIMED_OUT)

    def test_rejects_invalid_construction(self):
        clock = SimulatedClock()
        with pytest.raises(TypeError):
            ServedFilter(object(), clock)


CHAOS_SEEDS = [int(os.environ.get("REPRO_CHAOS_SEED", "0")) + i for i in range(3)]


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestChaosStorms:
    """Seeded fault+latency storms through the full serving stack."""

    def _run(self, seed):
        with use_registry():
            served, *_rest = build_stack(seed=seed, n_keys=1_000)
            report = run_storm(served, CALM_STORM_RECOVERY,
                               seed=seed, n_keys=1_000)
        return served, report

    def test_never_a_false_negative(self, seed):
        _served, report = self._run(seed)
        assert report.false_negatives == 0

    def test_breaker_trips_and_recovers(self, seed):
        served, report = self._run(seed)
        assert report.breaker_opens >= 1
        assert report.breaker_closes >= 1
        # By the end of recovery no breaker is still refusing traffic
        # outright (half-open, still probing, is acceptable).
        for breaker in served.breaker_device.breakers.values():
            assert breaker.state is not BreakerState.OPEN or breaker.allow()

    def test_shed_rate_bounded_and_storm_scoped(self, seed):
        _served, report = self._run(seed)
        calm, storm, recovery = report.phases
        assert calm.outcomes[ServeOutcome.SHED] == 0
        assert storm.rate(ServeOutcome.SHED) < 0.8
        assert recovery.rate(ServeOutcome.SHED) < 0.05

    def test_served_p99_within_deadline(self, seed):
        served, report = self._run(seed)
        for phase in report.phases:
            if phase.latencies:
                assert phase.latency_quantile(0.99) <= served.default_budget

    def test_calm_and_recovery_mostly_served(self, seed):
        _served, report = self._run(seed)
        calm, _storm, recovery = report.phases
        assert calm.rate(ServeOutcome.SERVED) == 1.0
        assert recovery.rate(ServeOutcome.SERVED) > 0.9

    def test_storm_is_reproducible(self, seed):
        _served1, report1 = self._run(seed)
        _served2, report2 = self._run(seed)
        assert [p.outcomes for p in report1.phases] == [
            p.outcomes for p in report2.phases
        ]
        assert report1.breaker_opens == report2.breaker_opens


class TestStormPhaseValidation:
    def test_rejects_bad_phase(self):
        with pytest.raises(ValueError):
            StormPhase("bad", -1)
        with pytest.raises(ValueError):
            StormPhase("bad", 1, mean_interarrival=0.0)
        with pytest.raises(ValueError):
            StormPhase("bad", 1, transient_read=1.5)
