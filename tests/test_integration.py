"""Cross-module integration tests: full pipelines a real deployment runs."""

from __future__ import annotations

import numpy as np

from repro.apps.lsm import LSMConfig, LSMTree
from repro.core.serialize import dumps, loads
from repro.filters.quotient import QuotientFilter
from repro.rangefilters.grafite import Grafite
from repro.workloads.synthetic import disjoint_key_sets
from repro.workloads.ycsb import run_workload


class TestStorageEnginePipeline:
    """Ingest → compact → mixed workload → filter persistence → restart."""

    def test_full_lifecycle(self):
        config = LSMConfig(
            compaction="lazy-leveling",
            memtable_entries=32,
            size_ratio=4,
            filter_policy="monkey",
            largest_level_epsilon=0.01,
        )
        tree = LSMTree(config)
        rng = np.random.default_rng(301)
        keys = sorted(int(k) for k in rng.choice(1 << 24, 1500, replace=False))
        for key in keys:
            tree.put(key, key * 3)

        # Phase 1: mixed workload against ground truth.
        run_workload(tree, "A", 1000, key_space=keys, seed=302)
        for key in keys[::37]:
            got = tree.get(key)
            assert got is not None  # updates replaced some values; key lives

        # Phase 2: deletes + re-reads.
        victims = keys[::11]
        for key in victims:
            tree.delete(key)
        tree.flush()
        assert all(tree.get(k, default="gone") == "gone" for k in victims[:40])

        # Phase 3: persist every run's filter and "restart" them.
        filters = [
            run.filter
            for level in tree._levels
            for run in level
            if run.filter is not None
        ]
        assert filters
        for filt in filters:
            restored = loads(dumps(filt))
            probe_keys = keys[:100]
            assert [restored.may_contain(k) for k in probe_keys] == [
                filt.may_contain(k) for k in probe_keys
            ]

    def test_adaptive_dictionary_on_lsm_negatives(self):
        """Adaptive filter guarding an LSM's lookups end to end."""
        from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
        from repro.adaptive.dictionary import FilteredDictionary

        members, negatives = disjoint_key_sets(800, 4000, seed=303)
        store = FilteredDictionary(
            AdaptiveQuotientFilter.for_capacity(800, 0.05, seed=304)
        )
        for key in members:
            store.put(key, key)
        for _ in range(3):  # three passes: FPs must not repeat
            for key in negatives:
                store.get(key)
        # At most one wasted I/O per distinct discovered FP.
        assert store.stats.false_positives <= 0.06 * len(negatives)


class TestGenomicsPipeline:
    """Reads → k-mer counting → graph → search index, one data set."""

    def test_reads_to_search(self):
        from repro.apps.debruijn import FilterBackedDeBruijn
        from repro.apps.kmers import KmerCounter
        from repro.apps.mantis import IncrementalMantis
        from repro.workloads.dna import extract_kmers, random_genome, sequencing_reads

        k = 11
        genome = random_genome(3000, seed=305)
        reads = sequencing_reads(genome, 120, 80, seed=306)

        counter = KmerCounter(k, 20_000, exact=True, seed=307)
        counter.add_reads(reads)
        read_kmers = {km for read in reads for km in extract_kmers(read, k)}
        assert counter.n_distinct == len(read_kmers)

        graph = FilterBackedDeBruijn(read_kmers, epsilon=0.05, seed=308)
        walk = graph.walk(reads[0][:k], max_steps=60)
        assert all(node in read_kmers for node in walk)

        index = IncrementalMantis(seed=309)
        exp0 = set(extract_kmers(genome[:1500], k))
        exp1 = set(extract_kmers(genome[1500:], k))
        index.add_experiment(exp0)
        index.add_experiment(exp1)
        query = list(exp1)[:50]
        assert 1 in index.query(query, theta=0.8)

    def test_out_of_ram_counting_matches_in_ram(self):
        from repro.apps.external_counter import ExternalQuotientCounter

        members, _ = disjoint_key_sets(400, 1, seed=310)
        external = ExternalQuotientCounter(64, 0.001, seed=311)
        in_ram = QuotientFilter.for_capacity(400, 0.001, seed=311)
        for key in members:
            external.add(key)
            in_ram.insert(key)
        merged = external.finalize()
        probes = members + [f"neg{i}" for i in range(500)]
        agree = sum(
            merged.may_contain(p) == in_ram.may_contain(p) for p in probes
        )
        # Same seed, same fingerprints: members always agree; negatives may
        # differ only through table-size-dependent splits.
        assert all(merged.may_contain(k) for k in members)
        assert agree >= 0.98 * len(probes)


class TestRangePipeline:
    def test_lsm_with_grafite_runs_correct_range_scans(self):
        factory = lambda keys: Grafite(
            keys, key_bits=24, max_range=1 << 10, epsilon=0.02, seed=312
        )
        tree = LSMTree(
            LSMConfig(
                compaction="tiering",
                memtable_entries=32,
                range_filter_factory=factory,
            )
        )
        rng = np.random.default_rng(313)
        data = {}
        for key in rng.choice(1 << 24, 600, replace=False):
            tree.put(int(key), int(key))
            data[int(key)] = int(key)
        for lo in rng.integers(0, (1 << 24) - 1024, size=60):
            lo = int(lo)
            expected = {
                k: v for k, v in data.items() if lo <= k <= lo + 1023
            }
            assert tree.range_query(lo, lo + 1023) == dict(sorted(expected.items()))
