"""Tests for the YCSB-style workload driver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lsm import LSMConfig, LSMTree
from repro.workloads.ycsb import WORKLOADS, run_workload


@pytest.fixture()
def loaded_tree():
    tree = LSMTree(LSMConfig(compaction="tiering", memtable_entries=32))
    rng = np.random.default_rng(1)
    keys = sorted(int(k) for k in rng.choice(1 << 20, 500, replace=False))
    for key in keys:
        tree.put(key, key)
    return tree, keys


class TestYcsbDriver:
    def test_mixes_sum_to_one(self):
        for name, spec in WORKLOADS.items():
            assert sum(spec.values()) == pytest.approx(1.0), name

    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    def test_runs_all_mixes(self, loaded_tree, workload):
        tree, keys = loaded_tree
        result = run_workload(tree, workload, 300, key_space=keys, seed=2)
        assert sum(result.ops.values()) == 300

    def test_read_only_mix_has_no_misses(self, loaded_tree):
        tree, keys = loaded_tree
        result = run_workload(tree, "C", 400, key_space=keys, seed=3)
        assert result.ops == {"read": 400}
        assert result.read_misses == 0  # all reads target preloaded keys

    def test_op_ratio_approximates_spec(self, loaded_tree):
        tree, keys = loaded_tree
        result = run_workload(tree, "B", 2000, key_space=keys, seed=4)
        read_fraction = result.ops["read"] / 2000
        assert 0.9 < read_fraction < 0.99

    def test_insert_mix_grows_store(self, loaded_tree):
        tree, keys = loaded_tree
        before = tree.stats.bytes_ingested
        run_workload(tree, "E", 300, key_space=keys, seed=5)
        assert tree.stats.bytes_ingested > before

    def test_unknown_workload(self, loaded_tree):
        tree, keys = loaded_tree
        with pytest.raises(ValueError, match="unknown workload"):
            run_workload(tree, "Z", 10, key_space=keys)

    def test_deterministic(self, loaded_tree):
        tree, keys = loaded_tree
        r1 = run_workload(tree, "A", 200, key_space=keys, seed=6)
        tree2 = LSMTree(LSMConfig(compaction="tiering", memtable_entries=32))
        for key in keys:
            tree2.put(key, key)
        r2 = run_workload(tree2, "A", 200, key_space=keys, seed=6)
        assert r1.ops == r2.ops
