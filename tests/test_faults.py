"""Fault-injection, recovery, and scrub tests (docs/robustness.md).

The chaos test at the bottom is the acceptance gate for the storage
stack: 100 seeded crash/corrupt/recover cycles over an ``LSMTree`` on a
``FaultyBlockDevice`` must lose zero acknowledged keys and every injected
filter-blob corruption must be reported by ``scrub()``.
"""

from __future__ import annotations

import random

import pytest

from repro.apps.lsm import LSMConfig, LSMTree
from repro.common.clock import SimulatedClock
from repro.common.faults import (
    FaultInjector,
    FaultyBlockDevice,
    LatencyInjector,
    RetryPolicy,
    SimulatedCrash,
    TransientIOError,
)


class TestFaultInjector:
    def test_deterministic_given_seed(self):
        a = FaultInjector(seed=5, bit_flip=0.3, torn_write=0.1, transient_read=0.2)
        b = FaultInjector(seed=5, bit_flip=0.3, torn_write=0.1, transient_read=0.2)
        ops = [a.draw_write(("filter", i)) for i in range(200)]
        ops += [a.draw_read(("run", i)) for i in range(200)]
        ops2 = [b.draw_write(("filter", i)) for i in range(200)]
        ops2 += [b.draw_read(("run", i)) for i in range(200)]
        assert ops == ops2
        assert any(op is not None for op in ops[:200])

    def test_per_address_class_rates(self):
        inj = FaultInjector(seed=1, bit_flip={"filter": 1.0})
        assert inj.draw_write(("filter", 3)) == "flip"
        assert inj.draw_write(("run", 3)) is None
        assert inj.draw_write("unrelated") is None

    def test_wildcard_default_rate(self):
        inj = FaultInjector(seed=1, transient_read={"wal": 0.0, "*": 1.0})
        assert not inj.draw_read(("wal", 1))
        assert inj.draw_read(("run", 1))

    def test_flip_changes_exactly_one_bit(self):
        inj = FaultInjector(seed=2)
        payload = bytes(range(64))
        flipped = inj.flip_payload(payload)
        diff = [a ^ b for a, b in zip(payload, flipped)]
        assert sum(bin(d).count("1") for d in diff) == 1

    def test_tear_truncates(self):
        inj = FaultInjector(seed=3)
        payload = bytes(range(64))
        torn = inj.tear_payload(payload)
        assert len(torn) < len(payload)
        assert payload.startswith(torn)


class TestCrashPoints:
    """``crash_after`` arms exactly one simulated crash at a named step."""

    def test_unarmed_is_a_no_op(self):
        inj = FaultInjector(seed=0)
        inj.maybe_crash("reshard.cutover")  # nothing armed: no raise
        assert inj.crashes == 0
        assert inj.armed_crash is None

    def test_fires_only_at_matching_step(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("reshard.backfill")
        assert inj.armed_crash == "reshard.backfill"
        inj.maybe_crash("reshard.planned")  # non-matching step passes through
        inj.maybe_crash("reshard.double_write")
        with pytest.raises(SimulatedCrash) as exc:
            inj.maybe_crash("reshard.backfill")
        assert exc.value.step == "reshard.backfill"

    def test_one_shot_disarms_after_firing(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("reshard.verify")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("reshard.verify")
        assert inj.armed_crash is None
        inj.maybe_crash("reshard.verify")  # second pass survives
        assert inj.crashes == 1

    def test_crashes_counted(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("step.a")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("step.a")
        inj.crash_after("step.b")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("step.b")
        assert inj.crashes == 2

    def test_rearming_replaces_previous_step(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("old.step")
        inj.crash_after("new.step")
        inj.maybe_crash("old.step")  # superseded arming never fires
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("new.step")

    def test_fired_step_stays_disarmed_across_rearm_attempts(self):
        # Recovery paths re-execute setup code verbatim, including the
        # crash_after call that armed the original crash.  Re-arming a
        # step that already fired must be a no-op or recovery crash-loops.
        inj = FaultInjector(seed=0)
        inj.crash_after("handoff.replay")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("handoff.replay")
        inj.crash_after("handoff.replay")  # recovery re-arms verbatim
        assert inj.armed_crash is None
        inj.maybe_crash("handoff.replay")  # replay survives
        assert inj.crashes == 1

    def test_rearm_true_fires_the_same_step_again(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("handoff.replay")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("handoff.replay")
        inj.crash_after("handoff.replay", rearm=True)
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("handoff.replay")
        assert inj.crashes == 2

    def test_fired_step_does_not_block_other_steps(self):
        inj = FaultInjector(seed=0)
        inj.crash_after("step.a")
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("step.a")
        inj.crash_after("step.b")  # a different step arms normally
        with pytest.raises(SimulatedCrash):
            inj.maybe_crash("step.b")


class TestScopedRates:
    """``"class@namespace"`` rate keys target one namespace's devices."""

    def test_scoped_key_wins_over_class_and_wildcard(self):
        inj = FaultInjector(
            seed=1, transient_read={"run@r1": 1.0, "run": 0.0, "*": 0.0}
        )
        # NamespacedDevice address shape: (cls, namespace, *rest).
        assert inj.draw_read(("run", "r1", 0, 4))
        assert not inj.draw_read(("run", "r2", 0, 4))
        assert not inj.draw_read(("wal", "r1", 7))

    def test_unscoped_spec_ignores_namespace(self):
        inj = FaultInjector(seed=1, transient_read={"run": 1.0, "*": 0.0})
        assert inj.draw_read(("run", "r1", 0, 4))
        assert inj.draw_read(("run", 3))
        assert not inj.draw_read(("wal", "r1", 7))

    def test_address_scope_shape(self):
        from repro.common.faults import address_scope

        assert address_scope(("run", "r2", 0, 4)) == "run@r2"
        assert address_scope(("wal", 7)) is None  # no namespace element
        assert address_scope("manifest") is None


class TestFaultyBlockDevice:
    def test_clean_passthrough(self):
        dev = FaultyBlockDevice()
        dev.write("a", b"hello", size=10)
        assert dev.read("a") == b"hello"
        assert dev.stats.writes == 1 and dev.stats.reads == 1
        assert dev.exists("a") and not dev.exists("b")
        assert len(dev) == 1 and dev.used_bytes == 10
        assert dev.corrupted_addresses() == frozenset()

    def test_bit_flip_corrupts_and_tracks(self):
        dev = FaultyBlockDevice(injector=FaultInjector(seed=1, bit_flip=1.0))
        dev.write(("filter", 1), b"\x00" * 32)
        assert dev.read(("filter", 1)) != b"\x00" * 32
        assert dev.corrupted_addresses() == {("filter", 1)}
        assert dev.fault_stats.bit_flips == 1

    def test_clean_overwrite_clears_corruption(self):
        inj = FaultInjector(seed=1, bit_flip=1.0)
        dev = FaultyBlockDevice(injector=inj)
        dev.write("a", b"\x00" * 8)
        inj.bit_flip = 0.0
        dev.write("a", b"\x00" * 8)
        assert dev.corrupted_addresses() == frozenset()
        assert dev.read("a") == b"\x00" * 8

    def test_torn_write_truncates(self):
        dev = FaultyBlockDevice(injector=FaultInjector(seed=4, torn_write=1.0))
        dev.write("a", b"x" * 100)
        assert len(dev.read("a")) < 100
        assert dev.fault_stats.torn_writes == 1
        assert ("torn", "a") in dev.fault_log

    def test_lost_write_keeps_old_content_and_charges_io(self):
        inj = FaultInjector(seed=5)
        dev = FaultyBlockDevice(injector=inj)
        dev.write("a", b"old")
        inj.lost_write = 1.0
        dev.write("a", b"new", size=3)
        assert dev.read("a") == b"old"
        assert dev.stats.writes == 2  # the device acked both
        assert dev.fault_stats.lost_writes == 1

    def test_lost_write_on_fresh_address_leaves_nothing(self):
        dev = FaultyBlockDevice(injector=FaultInjector(seed=6, lost_write=1.0))
        dev.write("a", b"data")
        assert not dev.exists("a")
        with pytest.raises(KeyError):
            dev.read("a")

    def test_transient_read_raises_then_recovers(self):
        inj = FaultInjector(seed=7, transient_read=1.0)
        dev = FaultyBlockDevice(injector=inj)
        dev.write("a", b"payload")
        with pytest.raises(TransientIOError):
            dev.read("a")
        inj.transient_read = 0.0
        assert dev.read("a") == b"payload"

    def test_faults_skip_structured_payloads(self):
        dev = FaultyBlockDevice(injector=FaultInjector(seed=8, bit_flip=1.0, torn_write=1.0))
        dev.write("obj", {"k": 1}, size=4)
        assert dev.read("obj") == {"k": 1}
        assert dev.corrupted_addresses() == frozenset()

    def test_ruin_flips_on_demand(self):
        dev = FaultyBlockDevice()
        dev.write("a", b"\x00" * 16)
        dev.ruin("a")
        assert dev.read("a") != b"\x00" * 16
        assert dev.corrupted_addresses() == {"a"}
        with pytest.raises(TypeError):
            dev.write("obj", 123)
            dev.ruin("obj")

    def test_delete_clears_tracking(self):
        dev = FaultyBlockDevice(injector=FaultInjector(seed=9, bit_flip=1.0))
        dev.write("a", b"\x00" * 8)
        dev.delete("a")
        assert dev.corrupted_addresses() == frozenset()


class TestRetryPolicy:
    def test_retries_then_succeeds(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("try again")
            return "ok"

        policy = RetryPolicy(max_attempts=4)
        assert policy.call(flaky) == "ok"
        assert policy.stats.attempts == 3
        assert policy.stats.retries == 2
        assert policy.stats.giveups == 0

    def test_gives_up_and_reraises(self):
        policy = RetryPolicy(max_attempts=3)

        def always_fail():
            raise TransientIOError("down")

        with pytest.raises(TransientIOError):
            policy.call(always_fail)
        assert policy.stats.giveups == 1
        assert policy.stats.retries == 2

    def test_backoff_accounting_deterministic(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=0.01, multiplier=2.0)

        def always_fail():
            raise TransientIOError("down")

        with pytest.raises(TransientIOError):
            policy.call(always_fail)
        # 0.01 + 0.02 + 0.04 accounted; the final attempt raises.
        assert policy.stats.backoff_seconds == pytest.approx(0.07)

    def test_non_transient_errors_propagate_immediately(self):
        policy = RetryPolicy(max_attempts=5)

        def boom():
            policy_calls.append(1)
            raise KeyError("not transient")

        policy_calls = []
        with pytest.raises(KeyError):
            policy.call(boom)
        assert len(policy_calls) == 1

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_rejects_unknown_jitter_mode(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter="thundering-herd")

    def _jitter_schedule(self, seed: int, n: int = 6) -> list[float]:
        policy = RetryPolicy(jitter="decorrelated", base_backoff=0.01,
                             max_backoff=0.5, seed=seed)
        return [policy.next_backoff(i) for i in range(n)]

    def test_decorrelated_jitter_is_seed_deterministic(self):
        # The reproducibility contract: the schedule is a pure function
        # of the seed, so a chaos run replays byte-for-byte.
        assert self._jitter_schedule(seed=42) == self._jitter_schedule(seed=42)
        assert self._jitter_schedule(seed=42) != self._jitter_schedule(seed=43)

    def test_decorrelated_jitter_respects_bounds(self):
        schedule = self._jitter_schedule(seed=7, n=50)
        assert all(0.01 <= b <= 0.5 for b in schedule)
        # Decorrelated jitter must actually vary, unlike fixed backoff.
        assert len(set(schedule)) > 1

    def test_jittered_call_advances_supplied_clock(self):

        clock = SimulatedClock()
        policy = RetryPolicy(max_attempts=3, jitter="decorrelated",
                             base_backoff=0.01, max_backoff=0.5,
                             seed=5, clock=clock)

        def always_fail():
            raise TransientIOError("down")

        with pytest.raises(TransientIOError):
            policy.call(always_fail)
        # Two backoffs (attempts 1 and 2) were accounted on the clock.
        assert clock.now() == pytest.approx(policy.stats.backoff_seconds)
        assert clock.now() >= 2 * 0.01


class TestLatencyInjector:
    def _draws(self, injector, n=200):
        return [injector.draw(0.0) for _ in range(n)]

    def test_deterministic_given_seed(self):
        a = self._draws(LatencyInjector(seed=9, base=0.001, spike_prob=0.1))
        b = self._draws(LatencyInjector(seed=9, base=0.001, spike_prob=0.1))
        c = self._draws(LatencyInjector(seed=10, base=0.001, spike_prob=0.1))
        assert a == b
        assert a != c

    def test_jitter_stays_within_band(self):
        injector = LatencyInjector(seed=1, base=0.001, jitter=0.25)
        for draw in self._draws(injector):
            assert 0.00075 <= draw <= 0.00125

    def test_plateau_window_slows_operations(self):
        injector = LatencyInjector(seed=2, base=0.001, jitter=0.0,
                                   plateaus=((1.0, 2.0, 10.0),))
        assert injector.draw(0.5) == pytest.approx(0.001)
        assert injector.draw(1.5) == pytest.approx(0.010)
        assert injector.draw(2.0) == pytest.approx(0.001)  # window is half-open
        assert injector.stats.plateau_draws == 1

    def test_slowdown_multiplier_is_mutable(self):
        injector = LatencyInjector(seed=3, base=0.001, jitter=0.0)
        assert injector.draw(0.0) == pytest.approx(0.001)
        injector.slowdown = 4.0
        assert injector.draw(0.0) == pytest.approx(0.004)

    def test_spikes_are_rare_and_big(self):
        injector = LatencyInjector(seed=4, base=0.001, jitter=0.0,
                                   spike_prob=0.05, spike_scale=25.0)
        draws = self._draws(injector, n=1000)
        spikes = [d for d in draws if d > 0.01]
        assert len(spikes) == injector.stats.spikes
        assert 10 <= len(spikes) <= 100  # ~50 expected at p=0.05
        assert all(s == pytest.approx(0.025) for s in spikes)

    def test_device_spend_advances_clock_and_busy_seconds(self):
        clock = SimulatedClock()
        latency = LatencyInjector(seed=5, base=0.001)
        device = FaultyBlockDevice(latency=latency, clock=clock)
        device.write("a", b"payload")
        device.read("a")
        assert clock.now() > 0.0
        assert device.stats.busy_seconds == pytest.approx(clock.now())

    def test_failed_read_still_costs_time(self):
        clock = SimulatedClock()
        latency = LatencyInjector(seed=6, base=0.001)
        injector = FaultInjector(seed=6, transient_read=1.0)
        device = FaultyBlockDevice(injector=injector, latency=latency,
                                   clock=clock)
        device.write("a", b"payload")
        before = clock.now()
        with pytest.raises(TransientIOError):
            device.read("a")
        assert clock.now() > before  # the failed I/O still took time

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyInjector(base=-1.0)
        with pytest.raises(ValueError):
            LatencyInjector(jitter=1.5)


def _insert(tree: LSMTree, rng: random.Random, n: int, acked: dict) -> None:
    for _ in range(n):
        key = rng.randrange(1 << 24)
        value = rng.randrange(1 << 16)
        tree.put(key, value)
        acked[key] = value


class TestRecovery:
    def test_recover_clean_device_restores_everything(self):
        tree = LSMTree(LSMConfig(memtable_entries=16, compaction="tiering", size_ratio=4))
        rng, acked = random.Random(0), {}
        _insert(tree, rng, 500, acked)
        recovered = LSMTree.recover(tree.device)
        assert recovered.recovery_report.runs_lost == 0
        assert recovered.recovery_report.wal_lost == 0
        for key, value in acked.items():
            assert recovered.get(key) == value

    def test_unflushed_memtable_survives_via_wal(self):
        tree = LSMTree(LSMConfig(memtable_entries=1000))  # nothing flushes
        for key in range(40):
            tree.put(key, key * 2)
        recovered = LSMTree.recover(tree.device)
        assert recovered.recovery_report.wal_replayed == 40
        for key in range(40):
            assert recovered.get(key) == key * 2

    def test_tombstones_survive_recovery(self):
        tree = LSMTree(LSMConfig(memtable_entries=16))
        for key in range(100):
            tree.put(key, key)
        for key in range(0, 100, 3):
            tree.delete(key)
        recovered = LSMTree.recover(tree.device)
        for key in range(100):
            expected = "gone" if key % 3 == 0 else key
            assert recovered.get(key, default="gone") == expected

    def test_config_rehydrated_from_manifest(self):
        tree = LSMTree(LSMConfig(memtable_entries=16, compaction="tiering", size_ratio=6))
        rng, acked = random.Random(1), {}
        _insert(tree, rng, 200, acked)
        recovered = LSMTree.recover(tree.device)  # no config passed
        assert recovered.config.compaction == "tiering"
        assert recovered.config.size_ratio == 6

    def test_corrupt_filter_blob_is_rebuilt(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=16), device=dev)
        rng, acked = random.Random(2), {}
        _insert(tree, rng, 300, acked)
        victims = [a for a in dev.addresses() if a[0] == "filter"][:2]
        for victim in victims:
            dev.ruin(victim)
        recovered = LSMTree.recover(dev)
        assert recovered.recovery_report.filters_rebuilt == len(victims)
        assert recovered.recovery_report.filters_degraded == 0
        for key, value in acked.items():
            assert recovered.get(key) == value
        # The rebuilt blobs are clean again.
        assert not [a for a in dev.corrupted_addresses() if a[0] == "filter"]

    def test_degraded_run_costs_one_extra_read_per_probe(self):
        dev = FaultyBlockDevice()
        config = LSMConfig(
            memtable_entries=32, compaction="tiering", size_ratio=4,
            rebuild_filters_on_recovery=False,
        )
        tree = LSMTree(config, device=dev)
        rng, acked = random.Random(3), {}
        _insert(tree, rng, 600, acked)
        tree.flush()
        victims = [a for a in dev.addresses() if a[0] == "filter"][:2]
        for victim in victims:
            dev.ruin(victim)
        recovered = LSMTree.recover(dev, config)
        assert recovered.recovery_report.filters_degraded == len(victims)
        before = dev.stats.snapshot()
        n_queries = 200
        for q in range(n_queries):
            recovered.get((1 << 30) + q)  # guaranteed-negative keys
        delta = dev.stats - before
        # Every degraded run is probed on every lookup: exactly one device
        # read each, counted in degraded_lookups.
        assert recovered.stats.degraded_lookups == len(victims) * n_queries
        assert delta.reads >= len(victims) * n_queries

    def test_manifest_loss_falls_back_to_device_scan(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=16), device=dev)
        rng, acked = random.Random(4), {}
        _insert(tree, rng, 300, acked)
        for slot in (0, 1):
            dev.delete(("manifest", slot))
        recovered = LSMTree.recover(dev, LSMConfig(memtable_entries=16))
        assert recovered.recovery_report.manifest_fallback
        assert recovered.recovery_report.runs_recovered > 0
        for key, value in acked.items():
            assert recovered.get(key) == value

    def test_corrupt_wal_record_is_detected_not_silent(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=1000), device=dev)
        for key in range(30):
            tree.put(key, key)
        dev.ruin(("wal", 7))
        recovered = LSMTree.recover(dev)
        assert recovered.recovery_report.wal_lost == 1
        assert recovered.recovery_report.wal_replayed == 29
        assert recovered.stats.integrity_faults >= 1

    def test_recovery_retries_transient_reads(self):
        inj = FaultInjector(seed=11, transient_read=0.3)
        dev = FaultyBlockDevice(injector=inj)
        tree = LSMTree(LSMConfig(memtable_entries=16, retry_attempts=8), device=dev)
        rng, acked = random.Random(5), {}
        _insert(tree, rng, 300, acked)
        recovered = LSMTree.recover(dev)
        assert recovered.recovery_report.runs_lost == 0
        for key, value in list(acked.items())[::7]:
            assert recovered.get(key) == value
        assert inj.stats.transient_reads > 0


class TestScrub:
    def test_clean_tree_scrubs_clean(self):
        tree = LSMTree(LSMConfig(memtable_entries=16))
        rng, acked = random.Random(6), {}
        _insert(tree, rng, 200, acked)
        report = tree.scrub()
        assert report.blocks_checked > 0
        assert report.corrupt == [] and report.repaired == []

    def test_scrub_reports_and_repairs_filter_corruption(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=16), device=dev)
        rng, acked = random.Random(7), {}
        _insert(tree, rng, 300, acked)
        victims = [a for a in dev.addresses() if a[0] == "filter"][:3]
        for victim in victims:
            dev.ruin(victim)
        report = tree.scrub(repair=False)
        assert set(victims) <= set(report.corrupt)
        assert report.repaired == []
        report = tree.scrub(repair=True)
        assert set(victims) <= set(report.repaired)
        assert dev.corrupted_addresses() == frozenset()
        assert tree.scrub(repair=False).corrupt == []

    def test_scrub_repairs_run_data(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=16), device=dev)
        rng, acked = random.Random(8), {}
        _insert(tree, rng, 200, acked)
        victim = next(a for a in dev.addresses() if a[0] == "run")
        dev.ruin(victim)
        report = tree.scrub(repair=True)
        assert victim in report.corrupt and victim in report.repaired
        recovered = LSMTree.recover(dev)
        assert recovered.recovery_report.runs_lost == 0
        for key, value in acked.items():
            assert recovered.get(key) == value

    def test_scrub_repairs_manifest(self):
        dev = FaultyBlockDevice()
        tree = LSMTree(LSMConfig(memtable_entries=16), device=dev)
        rng, acked = random.Random(9), {}
        _insert(tree, rng, 200, acked)
        victim = next(a for a in dev.addresses() if a[0] == "manifest")
        dev.ruin(victim)
        report = tree.scrub(repair=True)
        assert victim in report.corrupt
        recovered = LSMTree.recover(dev)
        assert not recovered.recovery_report.manifest_fallback


class TestChaos:
    """The acceptance gate: 100 seeded crash/corrupt/recover cycles."""

    def test_chaos_cycles_lose_nothing_and_scrub_finds_all(self):
        injector = FaultInjector(
            seed=1234,
            bit_flip={"filter": 1e-3},
            transient_read=1e-2,
        )
        device = FaultyBlockDevice(injector=injector)
        config = LSMConfig(
            memtable_entries=32, compaction="tiering", size_ratio=4,
            retry_attempts=6,
        )
        rng = random.Random(99)
        acked: dict[int, int] = {}
        deleted: set[int] = set()
        tree = LSMTree(config, device=device)
        for cycle in range(100):
            _insert(tree, rng, 40, acked)
            acked_keys = set(acked) - deleted
            if cycle % 10 == 5:
                for key in rng.sample(sorted(acked_keys), 3):
                    tree.delete(key)
                    deleted.add(key)
            # Inject targeted corruption into a live filter blob (bup's
            # --ruin) on top of the background bit-flip schedule.
            if cycle % 3 == 0:
                filters = [a for a in device.addresses() if a[0] == "filter"]
                if filters:
                    device.ruin(rng.choice(filters))
            # Crash: the in-memory tree is abandoned; only the device
            # survives.  Recover and verify.
            tree = LSMTree.recover(device, config)
            report = tree.recovery_report
            assert report.runs_lost == 0, f"cycle {cycle}: lost runs"
            assert report.wal_lost == 0, f"cycle {cycle}: lost WAL records"
            # Every corrupted live filter blob must be found by scrub.
            corrupted = {
                a for a in device.corrupted_addresses() if a[0] == "filter"
            }
            scrub = tree.scrub(repair=False)
            assert corrupted <= set(scrub.corrupt), f"cycle {cycle}: scrub missed"
            tree.scrub(repair=True)
            # Spot-check acknowledged keys every cycle; full check at end.
            live = sorted(set(acked) - deleted)
            sample = rng.sample(live, min(50, len(live)))
            for key in sample:
                assert tree.get(key) == acked[key], f"cycle {cycle}: lost {key}"
            for key in deleted:
                assert tree.get(key, default="gone") == "gone"
        for key, value in acked.items():
            if key not in deleted:
                assert tree.get(key) == value
        assert injector.stats.bit_flips > 0
        assert injector.stats.transient_reads > 0
