"""Tests for rank/select, Elias–Fano, and varint codes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitvector import BitVector
from repro.common.eliasfano import EliasFano, elias_fano_bits
from repro.common.rankselect import RankSelect
from repro.common.varint import (
    cqf_counter_bits,
    decode_gamma,
    elias_delta_bits,
    elias_gamma_bits,
    encode_gamma,
    unary_bits,
)


def _brute_rank(indexes: set[int], i: int) -> int:
    return sum(1 for j in indexes if j < i)


class TestRankSelect:
    @given(st.sets(st.integers(min_value=0, max_value=299), max_size=80))
    @settings(max_examples=50)
    def test_rank_select_match_model(self, indexes):
        bv = BitVector(300)
        for i in indexes:
            bv.set(i)
        rs = RankSelect(bv)
        assert rs.total == len(indexes)
        for i in range(0, 301, 7):
            assert rs.rank(i) == _brute_rank(indexes, i)
        ordered = sorted(indexes)
        for k, pos in enumerate(ordered):
            assert rs.select(k) == pos

    def test_empty(self):
        rs = RankSelect(BitVector(64))
        assert rs.total == 0
        assert rs.rank(64) == 0
        with pytest.raises(IndexError):
            rs.select(0)

    def test_rank_bounds(self):
        rs = RankSelect(BitVector(10))
        with pytest.raises(IndexError):
            rs.rank(11)

    def test_select_rank_inverse(self):
        bv = BitVector(500)
        idx = list(range(0, 500, 13))
        for i in idx:
            bv.set(i)
        rs = RankSelect(bv)
        for k in range(len(idx)):
            assert rs.rank(rs.select(k)) == k


class TestEliasFano:
    @given(
        st.lists(st.integers(min_value=0, max_value=10**6), min_size=0, max_size=200)
    )
    @settings(max_examples=50)
    def test_round_trip(self, values):
        values.sort()
        ef = EliasFano(values)
        assert len(ef) == len(values)
        assert ef.to_list() == values

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            EliasFano([3, 1])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            EliasFano([-1, 2])

    def test_rejects_small_universe(self):
        with pytest.raises(ValueError):
            EliasFano([5], universe=5)

    def test_next_geq(self):
        ef = EliasFano([2, 5, 5, 9, 100])
        assert ef.next_geq(0) == 2
        assert ef.next_geq(2) == 2
        assert ef.next_geq(3) == 5
        assert ef.next_geq(10) == 100
        assert ef.next_geq(101) is None

    def test_contains_in_range(self):
        ef = EliasFano([10, 20, 30])
        assert ef.contains_in_range(15, 25)
        assert not ef.contains_in_range(21, 29)
        assert ef.contains_in_range(30, 99)
        with pytest.raises(ValueError):
            ef.contains_in_range(5, 4)

    def test_contains(self):
        ef = EliasFano([1, 7])
        assert 7 in ef and 1 in ef and 5 not in ef

    def test_duplicates_supported(self):
        ef = EliasFano([4, 4, 4])
        assert ef.to_list() == [4, 4, 4]

    def test_space_near_theory(self):
        rng = np.random.default_rng(0)
        values = np.sort(rng.integers(0, 1 << 30, size=2000))
        ef = EliasFano([int(v) for v in values], universe=1 << 30)
        # 2 + log2(u/n) ≈ 21.3 bits per element; allow slack for rounding.
        assert ef.size_in_bits / 2000 < 24
        assert ef.size_in_bits <= 1.3 * elias_fano_bits(2000, 1 << 30)

    def test_empty(self):
        ef = EliasFano([])
        assert len(ef) == 0
        assert ef.next_geq(0) is None


class TestVarint:
    def test_unary(self):
        assert unary_bits(0) == 1
        assert unary_bits(5) == 6
        with pytest.raises(ValueError):
            unary_bits(-1)

    def test_gamma_bits(self):
        assert elias_gamma_bits(1) == 1
        assert elias_gamma_bits(2) == 3
        assert elias_gamma_bits(15) == 7
        with pytest.raises(ValueError):
            elias_gamma_bits(0)

    def test_delta_bits_smaller_for_large_values(self):
        assert elias_delta_bits(10**6) < elias_gamma_bits(10**6)

    @given(st.integers(min_value=1, max_value=10**9))
    def test_gamma_round_trip(self, value):
        bits = encode_gamma(value)
        assert len(bits) == elias_gamma_bits(value)
        decoded, rest = decode_gamma(bits + "101")
        assert decoded == value
        assert rest == "101"

    def test_gamma_decode_truncated(self):
        with pytest.raises(ValueError):
            decode_gamma("0001")

    def test_cqf_counter_bits(self):
        # One occurrence: just the remainder slot.
        assert cqf_counter_bits(1, 8) == 8
        # Two occurrences: remainder + one counter slot.
        assert cqf_counter_bits(2, 8) == 16
        # Counter grows logarithmically, not linearly.
        assert cqf_counter_bits(1 << 20, 8) <= 8 * (1 + 3)
        with pytest.raises(ValueError):
            cqf_counter_bits(0, 8)
