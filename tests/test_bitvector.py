"""Unit + property tests for BitVector and PackedArray."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common.bitvector import BitVector, PackedArray


class TestBitVector:
    def test_starts_clear(self):
        bv = BitVector(130)
        assert len(bv) == 130
        assert bv.count() == 0
        assert not any(bv.get(i) for i in range(130))

    def test_set_get_clear_single(self):
        bv = BitVector(100)
        bv.set(63)
        bv.set(64)
        assert bv.get(63) and bv.get(64)
        assert not bv.get(62) and not bv.get(65)
        bv.set(63, False)
        assert not bv.get(63) and bv.get(64)

    def test_index_errors(self):
        bv = BitVector(10)
        with pytest.raises(IndexError):
            bv.get(10)
        with pytest.raises(IndexError):
            bv.set(-1)

    def test_set_many_and_test_all(self):
        bv = BitVector(1000)
        idx = [0, 1, 63, 64, 65, 999]
        bv.set_many(idx)
        assert bv.test_all(idx)
        assert not bv.test_all([0, 2])
        assert bv.count() == len(idx)

    def test_set_many_duplicate_indexes(self):
        bv = BitVector(64)
        bv.set_many([5, 5, 5])
        assert bv.count() == 1

    def test_getitem_setitem(self):
        bv = BitVector(8)
        bv[3] = True
        assert bv[3]
        bv[3] = False
        assert not bv[3]

    def test_copy_is_independent(self):
        bv = BitVector(64)
        bv.set(1)
        dup = bv.copy()
        dup.set(2)
        assert not bv.get(2) and dup.get(1)

    @given(st.sets(st.integers(min_value=0, max_value=511), max_size=64))
    @settings(max_examples=50)
    def test_matches_set_model(self, indexes):
        bv = BitVector(512)
        for i in indexes:
            bv.set(i)
        assert bv.count() == len(indexes)
        for i in range(512):
            assert bv.get(i) == (i in indexes)


class TestPackedArray:
    def test_round_trip_simple(self):
        pa = PackedArray(10, 7)
        for i in range(10):
            pa.set(i, i * 11 % 128)
        for i in range(10):
            assert pa.get(i) == i * 11 % 128

    def test_word_boundary_spanning(self):
        # width 13 guarantees fields straddle 64-bit word boundaries.
        pa = PackedArray(40, 13)
        values = [(i * 5839) % (1 << 13) for i in range(40)]
        for i, v in enumerate(values):
            pa.set(i, v)
        assert [pa.get(i) for i in range(40)] == values

    def test_overwrite_does_not_leak_into_neighbours(self):
        pa = PackedArray(3, 9)
        pa.set(0, 0x1FF)
        pa.set(1, 0)
        pa.set(2, 0x1FF)
        pa.set(1, 0x155)
        assert pa.get(0) == 0x1FF
        assert pa.get(1) == 0x155
        assert pa.get(2) == 0x1FF

    def test_width_64(self):
        pa = PackedArray(4, 64)
        big = (1 << 64) - 3
        pa.set(2, big)
        assert pa.get(2) == big

    def test_value_masked_to_width(self):
        pa = PackedArray(2, 4)
        pa.set(0, 0xFF)
        assert pa.get(0) == 0xF

    def test_errors(self):
        with pytest.raises(ValueError):
            PackedArray(4, 0)
        with pytest.raises(ValueError):
            PackedArray(4, 65)
        pa = PackedArray(4, 8)
        with pytest.raises(IndexError):
            pa.get(4)
        with pytest.raises(IndexError):
            pa.set(-1, 0)

    def test_size_in_bits(self):
        assert PackedArray(10, 13).size_in_bits == 130

    @given(
        st.integers(min_value=1, max_value=64),
        st.data(),
    )
    @settings(max_examples=50)
    def test_matches_list_model(self, width, data):
        n = 20
        pa = PackedArray(n, width)
        model = [0] * n
        ops = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=(1 << width) - 1),
                ),
                max_size=40,
            )
        )
        for i, v in ops:
            pa.set(i, v)
            model[i] = v
        assert [pa.get(i) for i in range(n)] == model
