"""Tests for the counting filters (§2.6)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import DeletionError, FilterFullError
from repro.counting.counting_bloom import CountingBloomFilter
from repro.counting.cqf import CountingQuotientFilter
from repro.counting.dleft import DLeftCountingFilter
from repro.counting.spectral import SpectralBloomFilter
from repro.workloads.synthetic import zipf_multiset

# The CBF uses 8-bit counters here: the *common* contract (counts never
# under-count) only holds while no counter saturates, and the Zipf workload
# below exceeds 4-bit counters by design (that failure mode has its own
# dedicated tests in TestCountingBloomSpecifics).
ALL_COUNTING = [
    lambda: CountingBloomFilter(600, 0.01, counter_bits=8, seed=3),
    lambda: DLeftCountingFilter.for_capacity(600, 0.01, seed=3),
    lambda: SpectralBloomFilter(600, 0.01, seed=3),
    lambda: CountingQuotientFilter.for_capacity(600, 0.01, seed=3),
]


@pytest.fixture(params=ALL_COUNTING, ids=["cbf", "dleft", "spectral", "cqf"])
def counting_filter(request):
    return request.param()


class TestCommonCountingBehaviour:
    def test_counts_never_undercount(self, counting_filter):
        multiset = zipf_multiset(200, 500, skew=1.0, seed=5)
        for key, mult in multiset.items():
            for _ in range(mult):
                counting_filter.insert(key)
        for key, mult in multiset.items():
            assert counting_filter.count(key) >= mult

    def test_absent_keys_mostly_zero(self, counting_filter):
        for key in range(300):
            counting_filter.insert(key)
        wrong = sum(1 for key in range(10_000, 12_000) if counting_filter.count(key))
        assert wrong / 2000 <= 0.05

    def test_delete_decrements(self, counting_filter):
        for _ in range(3):
            counting_filter.insert("k")
        counting_filter.delete("k")
        assert counting_filter.count("k") >= 2
        counting_filter.delete("k")
        counting_filter.delete("k")
        assert counting_filter.count("k") == 0

    def test_delete_unknown_raises(self, counting_filter):
        counting_filter.insert("present")
        with pytest.raises(DeletionError):
            counting_filter.delete("definitely-absent-key-xyzzy")

    def test_may_contain_via_count(self, counting_filter):
        counting_filter.insert("a")
        assert counting_filter.may_contain("a")


class TestCountingBloomSpecifics:
    def test_saturation_detected(self):
        cbf = CountingBloomFilter(100, 0.01, counter_bits=2, seed=1)
        for _ in range(10):
            cbf.insert("hot")
        assert cbf.is_compromised
        assert cbf.saturation_events > 0

    def test_saturation_undercounts_after_deletes(self):
        # The §2.6 failure: saturate at 15 (4-bit), insert 20, delete 20 →
        # counters go negative-ish / other keys can be corrupted.  At
        # minimum the count for the hot key is wrong after partial deletes.
        cbf = CountingBloomFilter(100, 0.01, counter_bits=4, seed=1)
        for _ in range(20):
            cbf.insert("hot")
        for _ in range(5):
            cbf.delete("hot")
        # True remaining count is 15, but counters maxed at 15 then lost
        # increments, so the estimate under-counts.
        assert cbf.count("hot") < 15

    def test_rebuild_restores_guarantee(self):
        cbf = CountingBloomFilter(100, 0.01, counter_bits=2, seed=1)
        multiset = {f"k{i}": (i % 7) + 1 for i in range(50)}
        for key, mult in multiset.items():
            for _ in range(mult):
                cbf.insert(key)
        rebuilt = cbf.rebuild_with_wider_counters(multiset)
        assert rebuilt.counter_bits == 4
        for key, mult in multiset.items():
            assert rebuilt.count(key) >= mult

    def test_size_in_bits(self):
        cbf = CountingBloomFilter(100, 0.01, counter_bits=4)
        assert cbf.size_in_bits == cbf._m * 4


class TestDLeftSpecifics:
    def test_space_beats_cbf(self):
        # The tutorial: d-left saves "a factor of two or more" vs CBF.
        cbf = CountingBloomFilter(1000, 0.01)
        dlcf = DLeftCountingFilter.for_capacity(1000, 0.01)
        assert dlcf.size_in_bits < cbf.size_in_bits

    def test_not_resizable_overflow_raises(self):
        dlcf = DLeftCountingFilter(1, 12, d=2, bucket_cells=2, seed=1)
        with pytest.raises(FilterFullError):
            for i in range(100):
                dlcf.insert(i)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DLeftCountingFilter(0, 8)
        with pytest.raises(ValueError):
            DLeftCountingFilter(8, 8, d=1)


class TestSpectralSpecifics:
    def test_skewed_input_space_savings(self):
        # Variable-length counters: a Zipfian multiset costs much less than
        # total-insertions × counter-width.
        sbf = SpectralBloomFilter(2000, 0.01, seed=2)
        multiset = zipf_multiset(1000, 20_000, skew=1.2, seed=9)
        for key, mult in multiset.items():
            for _ in range(mult):
                sbf.insert(key)
        fixed_cost = CountingBloomFilter(2000, 0.01, counter_bits=16).size_in_bits
        assert sbf.size_in_bits < fixed_cost

    def test_minimal_increase_reduces_counts(self):
        plain = SpectralBloomFilter(100, 0.2, seed=3)
        mi = SpectralBloomFilter(100, 0.2, seed=3, minimal_increase=True)
        for i in range(100):
            plain.insert(i % 20)
            mi.insert(i % 20)
        plain_total = sum(plain.count(k) for k in range(20))
        mi_total = sum(mi.count(k) for k in range(20))
        assert mi_total <= plain_total

    def test_minimal_increase_blocks_deletes(self):
        mi = SpectralBloomFilter(100, 0.01, minimal_increase=True)
        mi.insert("a")
        with pytest.raises(DeletionError):
            mi.delete("a")


class TestCQFSpecifics:
    def test_skewed_multiset_uses_few_slots(self):
        cqf = CountingQuotientFilter.for_capacity(1000, 0.01, seed=4)
        for _ in range(100_000 // 100):
            pass
        # one hot key inserted a huge number of times costs O(log c) slots
        for _ in range(5000):
            cqf.insert("hot")
        assert cqf.slots_used <= 4
        assert cqf.count("hot") == 5000

    def test_slots_freed_on_delete(self):
        cqf = CountingQuotientFilter.for_capacity(100, 0.01, seed=4)
        for _ in range(300):
            cqf.insert("k")
        used = cqf.slots_used
        for _ in range(299):
            cqf.delete("k")
        assert cqf.slots_used < used
        assert cqf.count("k") == 1
        cqf.delete("k")
        assert cqf.count("k") == 0
        assert cqf.slots_used == 0

    def test_full_raises(self):
        cqf = CountingQuotientFilter(4, 8, seed=1)
        with pytest.raises(FilterFullError):
            for i in range(100):
                cqf.insert(i)

    def test_exact_counts_when_no_collisions(self):
        cqf = CountingQuotientFilter.for_capacity(500, 2**-12, seed=5)
        multiset = zipf_multiset(300, 2000, skew=1.0, seed=6)
        for key, mult in multiset.items():
            for _ in range(mult):
                cqf.insert(key)
        exact = sum(cqf.count(k) == m for k, m in multiset.items())
        assert exact >= 0.99 * len(multiset)

    @given(st.lists(st.integers(min_value=0, max_value=30), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_matches_multiset_model_lower_bound(self, inserts):
        cqf = CountingQuotientFilter(7, 10, seed=7)
        model: dict[int, int] = {}
        for key in inserts:
            cqf.insert(key)
            model[key] = model.get(key, 0) + 1
        for key, mult in model.items():
            assert cqf.count(key) >= mult
        assert len(cqf) == len(inserts)
