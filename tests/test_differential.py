"""Registry-wide differential testing against an exact-set oracle.

Every constructible filter family — plus lock-striped ``ShardedFilter``
and metered ``InstrumentedFilter`` wrappings — is driven through the
same hypothesis-generated op sequences (insert / delete / query /
serialize-roundtrip / batch probe) in lockstep with an exact Python
``set``.  The differential invariants:

* **no false negatives, ever** — any key the oracle holds must answer
  maybe-present, after any op prefix;
* **batch ≡ scalar** — ``may_contain_many`` agrees element-wise with
  ``may_contain`` at every checkpoint;
* **roundtrip equivalence** — for serializable families,
  ``loads(dumps(f))`` answers identically to ``f`` on every probe.

Deletes are only issued for keys the oracle currently holds (deleting a
never-inserted key is outside every filter's contract) and only to
families that advertise ``supports_deletes``.

Also hosts the ``ShardedFilter.supports_deletes`` regression test: the
flag must be recomputed from live shards, not frozen at construction,
or a shard that loses delete support when it grows keeps advertising
deletes it can no longer honour.

The tenant-router differential (``TestTenantRouterDifferential``) runs
the Bloofi filter-of-filters router against flat fan-out as the oracle,
with every registry family (and the sharded/instrumented wrappings)
injected as the per-tenant authoritative filter: after any interleaving
of provision / deprovision / insert, the O(log N) descent and the O(N)
scan must report the *identical* candidate set for every probe — tree
pruning is exact with respect to the leaves, whatever filter sits
underneath.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concurrent import ShardedFilter
from repro.core.errors import FilterFullError
from repro.core.interfaces import DynamicFilter
from repro.core.registry import FEATURE_MATRIX, make_filter
from repro.core.serialize import dumps as filter_dumps, loads as filter_loads
from repro.obs import InstrumentedFilter, MetricsRegistry
from repro.serve.tenant import TenantConfig, TenantRouter


def _factory_constructible(f) -> bool:
    return f.inserts and not f.values and not f.ranges


DIFF_NAMES = sorted(
    name
    for name, f in FEATURE_MATRIX.items()
    if _factory_constructible(f) and f.kind in ("dynamic", "semi-dynamic")
)
# Wrapped variants must satisfy the identical differential contract:
# sharding changes key routing and batch grouping, instrumentation
# interposes on every probe — neither may change a single answer.
DIFF_NAMES += [
    "sharded:bloom", "sharded:cuckoo", "sharded:dynamic-cuckoo",
    "instrumented:bloom", "instrumented:cuckoo",
]
STATIC_NAMES = ["xor", "xor-plus", "ribbon"]

# Families whose dumps/loads roundtrip is a supported, documented path.
SERIALIZABLE = {"bloom", "quotient", "cuckoo", "xor", "ribbon"}


def _make(name: str, *, capacity: int = 256, epsilon: float = 0.05, seed: int = 7):
    if name.startswith("sharded:"):
        inner = name.split(":", 1)[1]
        n_shards = 4
        return ShardedFilter(
            lambda i: make_filter(inner, capacity=capacity // n_shards + 8,
                                  epsilon=epsilon, seed=seed + i),
            n_shards=n_shards, seed=seed,
        )
    if name.startswith("instrumented:"):
        inner = name.split(":", 1)[1]
        return InstrumentedFilter(
            make_filter(inner, capacity=capacity, epsilon=epsilon, seed=seed),
            name=f"diff-{inner}", registry=MetricsRegistry(),
        )
    return make_filter(name, capacity=capacity, epsilon=epsilon, seed=seed)


# Op sequences over a small key universe so inserts collide with deletes
# and queries often enough to exercise the interesting interleavings.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "query", "batch"]),
        st.integers(min_value=0, max_value=300),
    ),
    max_size=48,
)

ABSENT_PROBES = [10**9 + 7 * i for i in range(12)]


def _checkpoint(filt, oracle, touched):
    """The differential invariants at one point in the op sequence."""
    probes = sorted(touched) + ABSENT_PROBES
    scalar = [filt.may_contain(k) for k in probes]
    batch = filt.may_contain_many(probes).tolist()
    assert batch == scalar, "batch answers diverge from scalar answers"
    for key, maybe in zip(probes, scalar):
        if key in oracle:
            assert maybe, f"false negative for present key {key}"


def _apply_ops(filt, ops):
    """Run ops against filter and oracle in lockstep; returns (oracle, touched)."""
    oracle: set[int] = set()
    touched: set[int] = set()
    deletable = filt.supports_deletes
    for op, key in ops:
        touched.add(key)
        if op == "insert":
            try:
                filt.insert(key)
            except FilterFullError:
                continue  # capacity is the filter's business, not an answer
            oracle.add(key)
        elif op == "delete":
            if deletable and key in oracle:
                filt.delete(key)
                oracle.discard(key)
            else:
                # Out-of-contract delete degrades to a query of the key.
                if key in oracle:
                    assert filt.may_contain(key)
        elif op == "query":
            if key in oracle:
                assert filt.may_contain(key), f"false negative for {key}"
        else:  # batch — mid-sequence checkpoint
            _checkpoint(filt, oracle, touched)
    return oracle, touched


@pytest.mark.parametrize("name", DIFF_NAMES)
class TestDifferentialDynamic:
    @given(ops=ops_strategy)
    @settings(max_examples=8, deadline=None)
    def test_op_sequence_matches_oracle(self, name, ops):
        filt = _make(name)
        oracle, touched = _apply_ops(filt, ops)
        _checkpoint(filt, oracle, touched)

    @given(ops=ops_strategy)
    @settings(max_examples=4, deadline=None)
    def test_roundtrip_preserves_answers(self, name, ops):
        base = name.split(":", 1)[-1]
        if base not in SERIALIZABLE or ":" in name:
            pytest.skip(f"{name} has no dumps/loads path")
        filt = _make(name)
        oracle, touched = _apply_ops(filt, ops)
        clone = filter_loads(filter_dumps(filt))
        probes = sorted(touched) + ABSENT_PROBES
        assert [clone.may_contain(k) for k in probes] == [
            filt.may_contain(k) for k in probes
        ], "roundtrip changed answers"
        _checkpoint(clone, oracle, touched)


@pytest.mark.parametrize("name", STATIC_NAMES)
class TestDifferentialStatic:
    @given(keys=st.lists(st.integers(min_value=0, max_value=2**40),
                         max_size=80, unique=True))
    @settings(max_examples=8, deadline=None)
    def test_build_matches_oracle(self, name, keys):
        filt = make_filter(name, keys=keys, epsilon=0.05, seed=7)
        oracle = set(keys)
        _checkpoint(filt, oracle, set(keys))
        if name in SERIALIZABLE:
            clone = filter_loads(filter_dumps(filt))
            _checkpoint(clone, oracle, set(keys))


# Tenant-fleet op sequences: provision/deprovision over a small tenant
# universe plus inserts, so placement, splits, and lazy removals all
# interleave with the probes.
tenant_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["provision", "deprovision", "insert"]),
        st.integers(min_value=0, max_value=7),     # tenant universe
        st.integers(min_value=0, max_value=300),   # key universe
    ),
    max_size=40,
)


@pytest.mark.parametrize("name", DIFF_NAMES)
class TestTenantRouterDifferential:
    """Bloofi router vs flat fan-out, over the whole filter registry.

    The flat scan probes every tenant's summary leaf then its
    authoritative filter; the router descends the interior ORs first.
    Same leaves, same authoritative filters — the answers must be
    bit-identical, and any key the exact oracle holds must always list
    its owner (PRESENT is never missed, ABSENT is never wrong).
    """

    def _checkpoint(self, router, oracle, touched):
        probes = sorted(touched) + ABSENT_PROBES
        for key in probes:
            tree_hits = sorted(router.query(key).tenants)
            flat_hits = sorted(router.query_flat(key).tenants)
            assert tree_hits == flat_hits, (
                f"router and flat fan-out diverge on key {key}"
            )
            for tenant, keys in oracle.items():
                if key in keys:
                    assert tenant in tree_hits, (
                        f"false negative: tenant {tenant} holds {key}"
                    )
        assert router.check_invariants() == []

    @given(ops=tenant_ops_strategy)
    @settings(max_examples=4, deadline=None)
    def test_router_matches_flat_fanout(self, name, ops):
        router = TenantRouter(
            TenantConfig(n_trees=3, leaf_capacity=64, epsilon=0.05, seed=7,
                         max_fanout=4, reor_interval=5),
            filter_factory=lambda tenant: _make(name),
        )
        oracle: dict[int, set[int]] = {}
        touched: set[int] = set()
        for op, tenant, key in ops:
            if op == "provision":
                if tenant not in oracle:
                    router.add_tenant(tenant)
                    oracle[tenant] = set()
            elif op == "deprovision":
                if tenant in oracle:
                    router.remove_tenant(tenant)
                    del oracle[tenant]
            else:  # insert
                if tenant not in oracle:
                    continue
                touched.add(key)
                try:
                    router.insert(tenant, key)
                except FilterFullError:
                    continue  # summary may keep the bits: superset-safe
                oracle[tenant].add(key)
        self._checkpoint(router, oracle, touched)


class _ShrinkingShard(DynamicFilter):
    """A deletable filter that loses delete support when it grows —
    the realistic shape: a cuckoo table that overflows into an appended
    Bloom layer can no longer delete reliably."""

    supports_deletes = True

    def __init__(self, capacity: int = 4):
        self.capacity = capacity
        self._keys: set = set()
        self._overflowed = False

    def insert(self, key):
        self._keys.add(key)
        if len(self._keys) > self.capacity:
            self._overflowed = True
            self.supports_deletes = False

    def may_contain(self, key):
        return key in self._keys

    def delete(self, key):
        assert self.supports_deletes, "delete after expansion is a contract bug"
        self._keys.discard(key)

    def __len__(self):
        return len(self._keys)

    @property
    def size_in_bits(self):
        return 64 * len(self._keys)


class TestShardedSupportsDeletes:
    def test_recomputed_after_shard_expansion(self):
        """Regression: supports_deletes was frozen at construction, so a
        shard expanding out of delete support went unnoticed and deletes
        were routed into shards that could not honour them."""
        sharded = ShardedFilter(lambda i: _ShrinkingShard(capacity=2), n_shards=2)
        assert sharded.supports_deletes
        # Overflow at least one shard.
        for key in range(12):
            sharded.insert(key)
        assert any(s._overflowed for s in sharded._shards)
        assert not sharded.supports_deletes, (
            "supports_deletes must be recomputed from live shards"
        )

    def test_sharded_expandable_delete_after_expansion(self):
        """Delete-after-expansion on a real sharded expandable filter:
        dynamic-cuckoo keeps delete support across growth, and the
        sharded wrapper must keep both the flag and the behaviour."""
        sharded = ShardedFilter(
            lambda i: make_filter("dynamic-cuckoo", capacity=16, epsilon=0.05,
                                  seed=11 + i),
            n_shards=2, seed=11,
        )
        keys = list(range(400))  # far past per-shard capacity: forces growth
        for key in keys:
            sharded.insert(key)
        assert sharded.supports_deletes
        for key in keys[::2]:
            sharded.delete(key)
        for key in keys[1::2]:
            assert sharded.may_contain(key), "false negative after deletes"

    def test_property_is_read_only(self):
        sharded = ShardedFilter(lambda i: _ShrinkingShard(), n_shards=2)
        with pytest.raises(AttributeError):
            sharded.supports_deletes = False
