"""Tests for the LOUDS-Sparse Fast Succinct Trie and the physical SuRF."""

from __future__ import annotations

from bisect import bisect_left

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rangefilters.fst import FastSuccinctTrie, SurfFST, _common_prefix_bytes
from repro.workloads.synthetic import (
    correlated_range_queries,
    random_key_set,
    random_range_queries,
)

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS


def _prefix_free(strings):
    strings = sorted(set(strings))
    return [
        s
        for i, s in enumerate(strings)
        if not (i + 1 < len(strings) and strings[i + 1].startswith(s))
    ]


class TestFastSuccinctTrie:
    def test_basic_membership(self):
        trie = FastSuccinctTrie([b"ape", b"apple", b"base"])
        assert trie.contains_prefix_of(b"apple-pie")
        assert trie.contains_prefix_of(b"baseball")
        assert not trie.contains_prefix_of(b"apricot")
        assert not trie.contains_prefix_of(b"ap")  # too short

    def test_successor_semantics(self):
        trie = FastSuccinctTrie([b"ape", b"apple", b"base"])
        assert trie.successor(b"aardvark") == b"ape"
        # "ape" is a prefix of "apex": its cover interval contains the query.
        assert trie.successor(b"apex") == b"ape"
        assert trie.successor(b"apf") == b"apple"
        assert trie.successor(b"apple") == b"apple"
        assert trie.successor(b"azz") == b"base"
        assert trie.successor(b"zebra") is None

    def test_successor_prefix_covers(self):
        trie = FastSuccinctTrie([b"ap"])
        # "ap" is a prefix of the query: its interval covers it.
        assert trie.successor(b"apple") == b"ap"

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            FastSuccinctTrie([b"b", b"a"])
        with pytest.raises(ValueError):
            FastSuccinctTrie([b"a", b"ab"])  # not prefix-free
        with pytest.raises(ValueError):
            FastSuccinctTrie([b""])

    def test_empty(self):
        trie = FastSuccinctTrie([])
        assert not trie.contains_prefix_of(b"x")
        assert trie.successor(b"x") is None

    def test_edge_count_equals_trie_size(self):
        # abc, abd share 'a','b': edges = a, b, c, d = 4.
        trie = FastSuccinctTrie([b"abc", b"abd"])
        assert trie.n_edges == 4

    def test_size_about_11_bits_per_edge(self):
        keys = random_key_set(2000, seed=1, universe=UNIVERSE)
        surf = SurfFST(keys, key_bits=KEY_BITS)
        assert 8 <= surf.size_in_bits / surf.n_edges <= 11

    @given(
        st.sets(st.binary(min_size=1, max_size=6), min_size=1, max_size=50),
        st.binary(min_size=1, max_size=7),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=150, deadline=None)
    def test_successor_matches_bruteforce(self, raw, probe, dense_levels):
        strings = _prefix_free(raw)
        trie = FastSuccinctTrie(strings, dense_levels=dense_levels)
        expected = None
        for s in strings:  # brute force over the successor contract
            if probe.startswith(s) or s > probe:
                if expected is None or s < expected:
                    expected = s
        assert trie.successor(probe) == expected

    @given(
        st.sets(st.binary(min_size=1, max_size=6), min_size=1, max_size=50),
        st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=100, deadline=None)
    def test_membership_matches_bruteforce(self, raw, dense_levels):
        strings = _prefix_free(raw)
        trie = FastSuccinctTrie(strings, dense_levels=dense_levels)
        for s in strings:
            assert trie.contains_prefix_of(s + b"xx")
        for probe in (b"zzz", b"\x00", b"abc"):
            expected = any(probe.startswith(s) for s in strings)
            assert trie.contains_prefix_of(probe) == expected

    def test_dense_zone_matches_sparse_semantics(self):
        """LOUDS-Dense top levels answer identically to all-sparse."""
        from repro.workloads.synthetic import random_key_set

        keys = random_key_set(1500, seed=99, universe=1 << 32)
        sparse = SurfFST(keys, key_bits=32, dense_levels=0)
        hybrid = SurfFST(keys, key_bits=32, dense_levels=2)
        for key in keys[::10]:
            assert hybrid.may_contain(key)
        probes = [(k + 3, k + 40) for k in keys[::25]]
        for lo, hi in probes:
            assert hybrid.may_intersect(lo, hi) == sparse.may_intersect(lo, hi)
        # The dense zone costs space (512 bits/node at the top levels).
        assert hybrid.size_in_bits >= sparse.size_in_bits

    def test_dense_rejects_negative(self):
        with pytest.raises(ValueError):
            FastSuccinctTrie([b"a"], dense_levels=-1)


class TestSurfFST:
    @pytest.fixture(scope="class")
    def keys(self):
        return random_key_set(3000, seed=2, universe=UNIVERSE)

    def test_no_false_negative_points(self, keys):
        surf = SurfFST(keys, key_bits=KEY_BITS)
        assert all(surf.may_contain(k) for k in keys[::5])

    def test_no_false_negative_ranges(self, keys):
        surf = SurfFST(keys, key_bits=KEY_BITS)
        for key in keys[::50]:
            lo = max(0, key - 50)
            hi = min(UNIVERSE - 1, key + 50)
            assert surf.may_intersect(lo, hi)

    def test_filters_random_empty_ranges(self, keys):
        surf = SurfFST(keys, key_bits=KEY_BITS, suffix_bytes=1)
        queries = random_range_queries(400, 64, seed=3, universe=UNIVERSE)

        def truly(lo, hi):
            i = bisect_left(keys, lo)
            return i < len(keys) and keys[i] <= hi

        empty = [q for q in queries if not truly(*q)]
        fps = sum(1 for lo, hi in empty if surf.may_intersect(lo, hi))
        assert fps / len(empty) < 0.2

    def test_correlated_queries_defeat_it(self, keys):
        """The byte-granular trie shares the analytic SuRF's weakness."""
        surf = SurfFST(keys, key_bits=KEY_BITS)
        queries = correlated_range_queries(keys, 300, 4, gap=1, seed=4)

        def truly(lo, hi):
            i = bisect_left(keys, lo)
            return i < len(keys) and keys[i] <= hi

        empty = [q for q in queries if not truly(*q)]
        fps = sum(1 for lo, hi in empty if surf.may_intersect(lo, hi))
        assert fps / max(1, len(empty)) > 0.5

    def test_suffix_bytes_reduce_fpr(self, keys):
        base = SurfFST(keys, key_bits=KEY_BITS)
        real = SurfFST(keys, key_bits=KEY_BITS, suffix_bytes=2)
        queries = correlated_range_queries(keys, 300, 4, gap=200, seed=5)

        def truly(lo, hi):
            i = bisect_left(keys, lo)
            return i < len(keys) and keys[i] <= hi

        empty = [q for q in queries if not truly(*q)]
        fp_base = sum(1 for lo, hi in empty if base.may_intersect(lo, hi))
        fp_real = sum(1 for lo, hi in empty if real.may_intersect(lo, hi))
        assert fp_real <= fp_base
        assert real.size_in_bits > base.size_in_bits

    def test_agrees_with_exact_on_members(self, keys):
        """Cross-validation with the analytic SuRF model: both must accept
        every truly non-empty range (no-false-negative agreement)."""
        from repro.rangefilters.surf import SuRF

        analytic = SuRF(keys, key_bits=KEY_BITS, seed=6)
        physical = SurfFST(keys, key_bits=KEY_BITS)
        for key in keys[::100]:
            assert analytic.may_intersect(key, key)
            assert physical.may_intersect(key, key)

    def test_validation(self):
        with pytest.raises(ValueError):
            SurfFST([1], key_bits=30)  # not a byte multiple
        with pytest.raises(ValueError):
            SurfFST([1], key_bits=32, suffix_bytes=-1)
        with pytest.raises(ValueError):
            SurfFST([-1], key_bits=32)
        with pytest.raises(ValueError):
            SurfFST([1], key_bits=32).may_intersect(5, 1)

    def test_empty(self):
        surf = SurfFST([], key_bits=32)
        assert not surf.may_intersect(0, UNIVERSE - 1)


class TestCommonPrefix:
    def test_basic(self):
        assert _common_prefix_bytes(b"abc", b"abd") == 2
        assert _common_prefix_bytes(b"abc", b"abc") == 3
        assert _common_prefix_bytes(b"abc", b"xyz") == 0
        assert _common_prefix_bytes(b"ab", b"abcd") == 2
