"""Multi-tenant Bloofi fleet: tree maintenance, router, quota, storms.

The contract under test (docs/robustness.md):

* the Bloofi tree never produces a false ABSENT — a key inserted for a
  live tenant is always in that tenant's candidate set, through splits,
  merges, lazy removals, re-ORs, and injected degradation;
* interior ORs stay supersets of their descendant leaves at all times
  (equality right after a full re-OR);
* cached aggregate properties (tree size/height, the router's
  ``supports_deletes``) are recomputed on child membership change —
  the ``ShardedFilter.supports_deletes`` lesson applied to the tree;
* per-tenant quota buckets shed only the noisy tenant, with reason
  ``"tenant_quota"``;
* the storm harness (serve-sim ``--tenants``) holds zero false
  negatives and bounded shed through mid-storm tenant churn.
"""

from __future__ import annotations

import os
import random

import pytest

from repro.common.clock import SimulatedClock
from repro.core.bloofi import BloofiConfig, BloofiTree
from repro.core.interfaces import DynamicFilter
from repro.obs import use_registry
from repro.serve import (
    AdmissionConfig,
    AdmissionController,
    Priority,
    ServeOutcome,
    TenantConfig,
    TenantQuota,
    TenantRouter,
    run_tenant_storm,
)

CHAOS_SEEDS = [int(os.environ.get("REPRO_CHAOS_SEED", "0")) + i for i in range(3)]

SMALL_TREE = BloofiConfig(
    leaf_capacity=32, epsilon=0.05, seed=5, max_fanout=4, reor_interval=1000,
)


def _loaded_tree(n_tenants: int, keys_per_tenant: int = 6, *, config=SMALL_TREE):
    tree = BloofiTree(config)
    truth = {}
    for t in range(n_tenants):
        tree.add_tenant(t)
        keys = [t * 1000 + i for i in range(keys_per_tenant)]
        tree.insert_many(t, keys)
        truth[t] = keys
    return tree, truth


class TestBloofiTree:
    def test_no_false_negatives_and_invariants(self):
        tree, truth = _loaded_tree(120)
        assert tree.check_invariants() == []
        for tenant, keys in truth.items():
            for key in keys:
                assert tenant in tree.candidates(key).tenants

    def test_probe_count_is_logarithmic_not_linear(self):
        tree, truth = _loaded_tree(256)
        rng = random.Random(1)
        probes = []
        for _ in range(50):
            t = rng.randrange(256)
            key = truth[t][0]
            probes.append(tree.candidates(key).probes)
        # A flat scan costs 256 probes; the descent should cost a small
        # multiple of fanout * height, far below the fleet size.
        assert max(probes) < 256 * 0.4
        assert tree.height >= 2

    def test_split_grows_and_collapse_shrinks_height(self):
        tree = BloofiTree(SMALL_TREE)
        for t in range(30):
            tree.add_tenant(t)
        assert tree.height >= 1
        grown = tree.height
        for t in range(28):
            tree.remove_tenant(t)
        assert tree.height <= grown
        assert tree.check_invariants() == []

    def test_lazy_removal_is_superset_until_reor(self):
        tree, truth = _loaded_tree(64)
        for t in range(48):
            tree.remove_tenant(t)
            del truth[t]
        # Lazy removal leaves dead tenants' bits in the interior ORs —
        # a safe superset, measurable as staleness, never an invariant
        # failure and never a lost key.
        assert tree.stale_fraction() > 0.0
        assert tree.check_invariants() == []
        for tenant, keys in truth.items():
            for key in keys:
                assert tenant in tree.candidates(key).tenants
        cleared = tree.reor()
        assert cleared > 0
        assert tree.stale_fraction() == 0.0
        assert tree.check_invariants() == []
        for tenant, keys in truth.items():
            for key in keys:
                assert tenant in tree.candidates(key).tenants

    def test_reor_runs_automatically_on_removal_pressure(self):
        config = BloofiConfig(
            leaf_capacity=32, epsilon=0.05, seed=5, max_fanout=4,
            reor_interval=8,
        )
        tree, truth = _loaded_tree(40, config=config)
        for t in range(30):
            tree.remove_tenant(t)
        assert tree.reor_runs >= 3
        assert tree.check_invariants() == []

    def test_degraded_interior_node_descends_everything(self):
        tree, truth = _loaded_tree(64)
        key = truth[17][0]
        clean = tree.candidates(key)
        stormy = tree.candidates(key, fault=lambda kind, depth: kind == "node")
        # Degradation must widen, never narrow: every clean candidate
        # survives, and the descent records it could not prune.
        assert set(clean.tenants) <= set(stormy.tenants)
        assert 17 in stormy.tenants
        assert stormy.degraded_descents > 0

    def test_degraded_leaf_is_a_forced_candidate(self):
        tree, truth = _loaded_tree(32)
        look = tree.candidates(truth[3][0], fault=lambda kind, depth: True)
        assert sorted(look.tenants) == sorted(tree.tenant_ids())
        assert sorted(look.degraded_leaves) == sorted(tree.tenant_ids())

    def test_geometry_mismatch_rejected(self):
        from repro.filters.bloom import BloomFilter

        tree = BloofiTree(SMALL_TREE)
        with pytest.raises(ValueError, match="geometry"):
            tree.add_tenant("odd", BloomFilter(512, 0.001, seed=99))

    def test_membership_errors(self):
        tree = BloofiTree(SMALL_TREE)
        tree.add_tenant("a")
        with pytest.raises(ValueError):
            tree.add_tenant("a")
        with pytest.raises(KeyError):
            tree.remove_tenant("b")
        with pytest.raises(KeyError):
            tree.insert("b", 1)
        assert tree.candidates(1).tenants == []


class TestCachedAggregates:
    """Satellite fix: cached aggregates must be recomputed on child
    membership change — no stale answers across splits and merges."""

    @staticmethod
    def _fresh(tree, name):
        tree._agg_cache.clear()
        return getattr(tree, name)

    def test_size_and_height_track_membership_churn(self):
        tree = BloofiTree(SMALL_TREE)
        rng = random.Random(9)
        live = []
        next_id = 0
        for step in range(300):
            cached_size, cached_height = tree.size_in_bits, tree.height
            assert cached_size == self._fresh(tree, "size_in_bits")
            assert cached_height == self._fresh(tree, "height")
            if live and rng.random() < 0.4:
                t = live.pop(rng.randrange(len(live)))
                tree.remove_tenant(t)
            else:
                tree.add_tenant(next_id)
                tree.insert(next_id, next_id)
                live.append(next_id)
                next_id += 1
            # The mutation just above must have invalidated the cache:
            # a membership change that kept serving the old aggregate is
            # exactly the ShardedFilter.supports_deletes bug shape.
            assert tree.size_in_bits == self._fresh(tree, "size_in_bits")
            assert tree.height == self._fresh(tree, "height")

    def test_size_in_bits_regression_add_after_read(self):
        """Regression shape: read the cached aggregate, then change
        membership, then read again — the second read must see the new
        fleet, not the memo."""
        tree = BloofiTree(SMALL_TREE)
        for t in range(10):
            tree.add_tenant(t)
        before = tree.size_in_bits
        tree.add_tenant("late")
        assert tree.size_in_bits > before
        tree.remove_tenant("late")
        assert tree.size_in_bits == before


class _ShrinkingAuth(DynamicFilter):
    """Authoritative filter that loses delete support as it grows —
    the same shape as test_differential._ShrinkingShard."""

    supports_deletes = True

    def __init__(self, capacity: int = 4):
        self.capacity = capacity
        self._keys: set = set()

    def insert(self, key):
        self._keys.add(key)
        if len(self._keys) > self.capacity:
            self.supports_deletes = False

    def may_contain(self, key):
        return key in self._keys

    def delete(self, key):
        assert self.supports_deletes
        self._keys.discard(key)

    def __len__(self):
        return len(self._keys)

    @property
    def size_in_bits(self):
        return 64 * len(self._keys)


class TestRouterSupportsDeletes:
    def test_recomputed_from_live_fleet(self):
        router = TenantRouter(
            TenantConfig(n_trees=2, leaf_capacity=32, seed=3),
            filter_factory=lambda t: _ShrinkingAuth(capacity=3),
        )
        for t in range(4):
            router.add_tenant(t)
        assert router.supports_deletes
        for key in range(8):  # overflow tenant 0's authoritative filter
            router.insert(0, key)
        assert not router.supports_deletes, (
            "supports_deletes must be recomputed from live tenants"
        )
        # Deprovisioning the degraded tenant restores the capability.
        router.remove_tenant(0)
        assert router.supports_deletes

    def test_empty_fleet_has_no_delete_support(self):
        router = TenantRouter(TenantConfig(n_trees=2, seed=3))
        assert not router.supports_deletes


class TestTenantRouter:
    def test_router_and_flat_agree_everywhere(self):
        router = TenantRouter(TenantConfig(n_trees=3, leaf_capacity=64, seed=11))
        rng = random.Random(11)
        truth = {}
        for t in range(80):
            router.add_tenant(t)
            keys = [rng.randrange(1 << 30) for _ in range(8)]
            router.insert_many(t, keys)
            truth[t] = keys
        probes = (
            [keys[0] for keys in truth.values()]
            + [rng.randrange(1 << 30) for _ in range(200)]
        )
        for key in probes:
            tree_hits = sorted(router.query(key).tenants, key=repr)
            flat_hits = sorted(router.query_flat(key).tenants, key=repr)
            assert tree_hits == flat_hits, f"paths diverge on key {key}"
        assert router.check_invariants() == []

    def test_router_probes_beat_flat(self):
        router = TenantRouter(TenantConfig(n_trees=2, leaf_capacity=64, seed=1))
        for t in range(200):
            router.add_tenant(t)
            router.insert(t, t)
        look = router.query(5)
        flat = router.query_flat(5)
        assert look.probes < flat.probes
        assert flat.probes >= 200

    def test_placement_uses_every_tree(self):
        router = TenantRouter(TenantConfig(n_trees=4, seed=0))
        for t in range(64):
            router.add_tenant(t)
        assert all(len(tree) > 0 for tree in router.trees.values())


class TestTenantQuota:
    def _admission(self, quota: TenantQuota) -> tuple:
        clock = SimulatedClock()
        admission = AdmissionController(
            clock, AdmissionConfig(tenant_quota=quota)
        )
        return clock, admission

    def test_noisy_tenant_shed_with_quota_reason(self):
        clock, admission = self._admission(TenantQuota(rate=10.0, burst=2.0))
        for _ in range(2):
            decision = admission.admit(clock.now(), Priority.NORMAL, tenant="noisy")
            assert decision.admitted
        decision = admission.admit(clock.now(), Priority.NORMAL, tenant="noisy")
        assert not decision.admitted and decision.reason == "tenant_quota"
        # The quiet tenant's bucket is untouched: isolation, not global
        # throttling.
        assert admission.admit(clock.now(), Priority.NORMAL, tenant="quiet").admitted
        assert admission.stats.shed_by_tenant == {"noisy": 1}

    def test_bucket_refills_with_time(self):
        clock, admission = self._admission(TenantQuota(rate=10.0, burst=1.0))
        assert admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted
        assert not admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted
        clock.advance(0.2)  # 2 tokens earned, capped at burst=1
        assert admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted
        assert not admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted

    def test_forget_tenant_drops_bucket(self):
        clock, admission = self._admission(TenantQuota(rate=0.001, burst=1.0))
        assert admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted
        assert not admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted
        admission.forget_tenant("t")
        # A re-provisioned tenant starts with a fresh burst allowance.
        assert admission.admit(clock.now(), Priority.NORMAL, tenant="t").admitted

    def test_untenanted_requests_bypass_quota(self):
        clock, admission = self._admission(TenantQuota(rate=0.001, burst=1.0))
        for _ in range(5):
            assert admission.admit(clock.now(), Priority.NORMAL).admitted


@pytest.mark.parametrize("seed", CHAOS_SEEDS)
class TestTenantStorm:
    """Satellite: 3-seed serve-sim smoke — zero false negatives and
    bounded shed through a fault storm, with and without churn."""

    def _run(self, seed: int, churn_every: int):
        with use_registry():
            storm, rep, store = run_tenant_storm(
                seed=seed,
                n_tenants=48,
                churn_every=churn_every,
                quota=TenantQuota(rate=400.0, burst=40.0),
            )
        return storm, rep, store

    def _assert_contract(self, storm, rep):
        assert storm.false_negatives == 0
        assert rep.audit_false_negatives == 0
        assert rep.invariant_failures == 0
        # Shedding is the mechanism, not the steady state: the calm and
        # recovery phases must stay mostly served.
        shed_rate = storm.total(ServeOutcome.SHED) / storm.n_requests
        assert shed_rate <= 0.35
        assert storm.goodput() >= 0.4

    def test_storm_without_churn(self, seed):
        storm, rep, store = self._run(seed, churn_every=0)
        self._assert_contract(storm, rep)
        assert rep.tenants_added == 0 and rep.tenants_removed == 0
        assert rep.n_tenants_final == rep.n_tenants_start

    def test_storm_with_churn(self, seed):
        storm, rep, store = self._run(seed, churn_every=8)
        self._assert_contract(storm, rep)
        # Churn really happened mid-storm, under fire.
        assert rep.tenants_added > 10 and rep.tenants_removed > 10
        # Lazy removals produced staleness and the drain re-OR shed it.
        assert rep.stale_bits_cleared > 0
        assert store.router.stale_fraction() == 0.0
