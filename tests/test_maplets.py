"""Tests for the maplets (§2.4), including PRS/NRS behaviour."""

from __future__ import annotations

import pytest

from repro.core.errors import DeletionError, ImmutableFilterError
from repro.maplets.bloomier import BloomierMaplet
from repro.maplets.chucky import ChuckyMaplet, huffman_code_lengths
from repro.maplets.qf_maplet import QuotientFilterMaplet
from repro.maplets.slimdb import SlimDBMaplet
from repro.workloads.synthetic import disjoint_key_sets


@pytest.fixture(scope="module")
def kv_data():
    members, negatives = disjoint_key_sets(800, 4000, seed=31)
    values = {key: i % 97 for i, key in enumerate(members)}
    return values, negatives


class TestBloomier:
    def test_members_get_their_value(self, kv_data):
        values, _ = kv_data
        maplet = BloomierMaplet(values, seed=1)
        for key, value in values.items():
            assert maplet.get(key) == [value]

    def test_prs_and_nrs_are_one(self, kv_data):
        values, negatives = kv_data
        maplet = BloomierMaplet(values, seed=1)
        assert all(len(maplet.get(k)) == 1 for k in values)
        assert all(len(maplet.get(k)) == 1 for k in negatives[:500])

    def test_value_update(self, kv_data):
        values, _ = kv_data
        maplet = BloomierMaplet(values, seed=1)
        key = next(iter(values))
        maplet.update(key, 12345)
        assert maplet.get(key) == [12345]
        # Other keys unaffected (matched cells are private).
        others = [k for k in values if k != key][:200]
        assert all(maplet.get(k) == [values[k]] for k in others)

    def test_no_inserts(self, kv_data):
        values, _ = kv_data
        maplet = BloomierMaplet(values, seed=1)
        with pytest.raises(ImmutableFilterError):
            maplet.insert("new-key", 1)

    def test_empty(self):
        maplet = BloomierMaplet({}, seed=1)
        assert len(maplet) == 0


class TestQFMaplet:
    def test_round_trip(self, kv_data):
        values, _ = kv_data
        maplet = QuotientFilterMaplet.for_capacity(len(values), 0.01, seed=2)
        for key, value in values.items():
            maplet.insert(key, value)
        for key, value in values.items():
            assert value in maplet.get(key)

    def test_prs_close_to_one(self, kv_data):
        values, _ = kv_data
        maplet = QuotientFilterMaplet.for_capacity(len(values), 0.01, seed=2)
        for key, value in values.items():
            maplet.insert(key, value)
        total = sum(len(maplet.get(k)) for k in values)
        assert total / len(values) < 1.05  # PRS = 1 + ε

    def test_nrs_close_to_epsilon(self, kv_data):
        values, negatives = kv_data
        maplet = QuotientFilterMaplet.for_capacity(len(values), 0.01, seed=2)
        for key, value in values.items():
            maplet.insert(key, value)
        total = sum(len(maplet.get(k)) for k in negatives)
        assert total / len(negatives) < 0.05  # NRS = ε

    def test_multiple_values_per_key(self):
        maplet = QuotientFilterMaplet.for_capacity(100, 0.01, seed=3)
        maplet.insert("k", 1)
        maplet.insert("k", 2)
        assert sorted(maplet.get("k")) == [1, 2]
        maplet.delete("k", 1)
        assert maplet.get("k") == [2]

    def test_delete(self):
        maplet = QuotientFilterMaplet.for_capacity(100, 0.01, seed=3)
        maplet.insert("k", 9)
        maplet.delete("k", 9)
        assert maplet.get("k") == []
        with pytest.raises(DeletionError):
            maplet.delete("k", 9)

    def test_negative_get_empty_usually(self):
        maplet = QuotientFilterMaplet.for_capacity(100, 0.001, seed=3)
        maplet.insert("k", 9)
        assert maplet.get("other") == []


class TestSlimDB:
    def test_exact_positive_results(self, kv_data):
        values, _ = kv_data
        maplet = SlimDBMaplet(fingerprint_bits=8, seed=4)  # force collisions
        for key, value in values.items():
            maplet.insert(key, value)
        # PRS exactly 1 and the value is always the right one.
        for key, value in values.items():
            assert maplet.get(key) == [value]

    def test_collisions_detected(self, kv_data):
        values, _ = kv_data
        maplet = SlimDBMaplet(fingerprint_bits=8, seed=4)
        for key, value in values.items():
            maplet.insert(key, value)
        assert maplet.n_collisions > 0  # 800 keys into 256 fingerprints

    def test_upsert(self):
        maplet = SlimDBMaplet(seed=5)
        maplet.insert("k", 1)
        maplet.insert("k", 2)
        assert maplet.get("k") == [2]
        assert len(maplet) == 1

    def test_delete_paths(self):
        maplet = SlimDBMaplet(seed=5)
        maplet.insert("k", 1)
        maplet.delete("k", 1)
        assert maplet.get("k") == []
        with pytest.raises(DeletionError):
            maplet.delete("k", 1)

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            SlimDBMaplet(fingerprint_bits=0)


class TestHuffman:
    def test_lengths_of_uniform(self):
        lengths = huffman_code_lengths({0: 1, 1: 1, 2: 1, 3: 1})
        assert all(length == 2 for length in lengths.values())

    def test_skewed_gives_short_hot_code(self):
        lengths = huffman_code_lengths({"hot": 0.9, "warm": 0.07, "cold": 0.03})
        assert lengths["hot"] == 1
        assert lengths["cold"] >= 2

    def test_kraft_inequality(self):
        lengths = huffman_code_lengths({i: (i + 1) ** 2 for i in range(17)})
        assert sum(2.0 ** -l for l in lengths.values()) <= 1.0 + 1e-9

    def test_single_symbol(self):
        assert huffman_code_lengths({"only": 5}) == {"only": 1}

    def test_empty(self):
        assert huffman_code_lengths({}) == {}


class TestChucky:
    def test_round_trip(self):
        # LSM-like level skew: level i holds ~10^i keys.
        weights = {0: 1, 1: 10, 2: 100, 3: 1000}
        maplet = ChuckyMaplet(500, 0.01, weights, seed=6)
        members, _ = disjoint_key_sets(400, 1, seed=7)
        for i, key in enumerate(members):
            maplet.insert(key, 3 if i % 10 else 1)
        hits = sum(1 for i, k in enumerate(members) if (3 if i % 10 else 1) in maplet.get(k))
        assert hits == len(members)

    def test_mean_value_bits_below_fixed_width(self):
        weights = {0: 1, 1: 10, 2: 100, 3: 1000}
        maplet = ChuckyMaplet(2000, 0.01, weights, seed=6)
        members, _ = disjoint_key_sets(1000, 1, seed=8)
        for i, key in enumerate(members):
            level = 3 if i % 11 else 2  # ~91% of keys in the biggest level
            maplet.insert(key, level)
        assert maplet.mean_value_bits < maplet.fixed_width_value_bits

    def test_rejects_unknown_level(self):
        maplet = ChuckyMaplet(10, 0.01, {0: 1}, seed=6)
        with pytest.raises(ValueError):
            maplet.insert("k", 7)

    def test_delete_refunds_bits(self):
        maplet = ChuckyMaplet(10, 0.01, {0: 1, 1: 3}, seed=6)
        maplet.insert("k", 1)
        bits = maplet.size_in_bits
        maplet.delete("k", 1)
        assert maplet.size_in_bits < bits
