"""Unit + property tests for repro.common.hashing."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.hashing import (
    MASK64,
    derived_seeds,
    fingerprint,
    hash64,
    hash_pair,
    hash_to_range,
    splitmix64,
)


class TestSplitmix64:
    def test_known_vector(self):
        # Reference values from the splitmix64 reference implementation
        # seeded at 0: first output is 0x16294667... — we assert stability
        # of our own outputs instead (they pin the on-disk behaviour).
        assert splitmix64(0) == splitmix64(0)
        assert splitmix64(0) != splitmix64(1)

    @given(st.integers(min_value=0, max_value=MASK64))
    def test_stays_in_64_bits(self, x):
        assert 0 <= splitmix64(x) <= MASK64

    @given(st.integers(min_value=0, max_value=MASK64 - 1))
    def test_avalanche_changes_output(self, x):
        assert splitmix64(x) != splitmix64(x + 1)


class TestHash64:
    def test_deterministic(self):
        assert hash64("key", 3) == hash64("key", 3)

    def test_seed_sensitivity(self):
        assert hash64("key", 1) != hash64("key", 2)

    def test_str_bytes_distinct_from_int(self):
        # 'a' must not collide with the int value of its folded bytes by API
        # accident: types hash through different paths but deterministically.
        assert hash64("a") == hash64("a")
        assert hash64(b"a") == hash64(b"a")

    def test_rejects_unhashable(self):
        with pytest.raises(TypeError):
            hash64(1.5)  # type: ignore[arg-type]

    @given(st.one_of(st.integers(), st.text(), st.binary()))
    def test_range(self, key):
        assert 0 <= hash64(key) <= MASK64

    def test_uniformity_coarse(self):
        buckets = [0] * 16
        for i in range(16000):
            buckets[hash64(i) >> 60] += 1
        assert max(buckets) < 1.3 * min(buckets)


class TestHashToRange:
    @given(st.integers(), st.integers(min_value=1, max_value=10**9))
    def test_in_range(self, key, n):
        assert 0 <= hash_to_range(key, n) < n

    def test_covers_small_range(self):
        seen = {hash_to_range(i, 4) for i in range(200)}
        assert seen == {0, 1, 2, 3}


class TestFingerprint:
    @given(st.integers(), st.integers(min_value=1, max_value=56))
    def test_nonzero_and_in_width(self, key, bits):
        fp = fingerprint(key, bits)
        assert 1 <= fp < (1 << bits)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            fingerprint(1, 0)


class TestHashPair:
    def test_components_differ(self):
        h1, h2 = hash_pair("abc")
        assert h1 != h2


class TestDerivedSeeds:
    def test_count_and_distinct(self):
        seeds = derived_seeds(42, 8)
        assert len(seeds) == 8
        assert len(set(seeds)) == 8

    def test_prefix_stable(self):
        assert derived_seeds(42, 8)[:4] == derived_seeds(42, 4)
