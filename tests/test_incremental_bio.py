"""Tests for IncrementalMantis (Bentley–Saxe) and the weighted de Bruijn
graph (deBGR)."""

from __future__ import annotations

import math

import pytest

from repro.apps.debruijn import WeightedDeBruijn
from repro.apps.mantis import IncrementalMantis
from repro.workloads.dna import extract_kmers, random_genome, sequencing_experiments

K = 11


class TestIncrementalMantis:
    @pytest.fixture(scope="class")
    def experiments(self):
        return sequencing_experiments(12, 1500, K, shared_fraction=0.3, seed=201)

    def _ground_truth(self, experiments, query, theta):
        threshold = math.ceil(theta * len(query))
        return sorted(
            e
            for e, kmers in enumerate(experiments)
            if sum(1 for q in query if q in kmers) >= threshold
        )

    def test_matches_batch_mantis(self, experiments):
        inc = IncrementalMantis(seed=202)
        for kmers in experiments:
            inc.add_experiment(kmers)
        for source in (0, 5, 11):
            query = list(experiments[source])[:50]
            expected = self._ground_truth(experiments, query, 0.8)
            assert inc.query(query, theta=0.8) == expected

    def test_queries_correct_at_every_prefix(self, experiments):
        """Exactness must hold after every single addition (the
        incremental-updatability claim)."""
        inc = IncrementalMantis(seed=203)
        for n_added, kmers in enumerate(experiments, start=1):
            inc.add_experiment(kmers)
            query = list(experiments[n_added - 1])[:40]
            expected = self._ground_truth(experiments[:n_added], query, 0.8)
            assert inc.query(query, theta=0.8) == expected

    def test_binary_counter_structure(self, experiments):
        inc = IncrementalMantis(seed=204)
        for kmers in experiments[:7]:  # 7 = 0b111
            inc.add_experiment(kmers)
        assert inc.n_levels == 3
        assert inc.n_experiments == 7

    def test_amortised_rebuilds(self, experiments):
        inc = IncrementalMantis(seed=205)
        for kmers in experiments:
            inc.add_experiment(kmers)
        # 12 additions; a full rebuild each time would be 12 rebuilds of
        # everything.  Bentley–Saxe does at most n rebuild events total
        # and each experiment participates in O(log n) of them.
        assert inc.rebuilds <= 12

    def test_empty_query(self, experiments):
        inc = IncrementalMantis(seed=206)
        inc.add_experiment(experiments[0])
        assert inc.query([], theta=0.5) == []

    def test_rejects_bad_buffer(self):
        with pytest.raises(ValueError):
            IncrementalMantis(buffer_experiments=0)


class TestWeightedDeBruijn:
    @pytest.fixture(scope="class")
    def corpus(self):
        genome = random_genome(3000, seed=211)
        # Repeat fragments so edge counts exceed 1.
        reads = [genome, genome[500:1500], genome[500:1500], genome[2000:2600]]
        truth: dict[str, int] = {}
        for read in reads:
            for edge in extract_kmers(read, K + 1):
                truth[edge] = truth.get(edge, 0) + 1
        return reads, truth

    def test_exact_after_correction(self, corpus):
        reads, truth = corpus
        graph = WeightedDeBruijn.build(reads, K, epsilon=0.05, seed=212)
        wrong = sum(1 for edge, count in truth.items() if graph.edge_weight(edge) != count)
        # The correction pass fixes collision-corrupted counts; residual
        # errors can only be collisions both of whose endpoints balanced.
        assert wrong / len(truth) < 0.01

    def test_corrections_found_with_small_fingerprints(self, corpus):
        reads, _ = corpus
        graph = WeightedDeBruijn.build(reads, K, epsilon=0.3, seed=213)
        assert graph.n_corrected >= 0  # pass runs; collisions may be few

    def test_node_weights_positive_for_real_kmers(self, corpus):
        reads, _ = corpus
        graph = WeightedDeBruijn.build(reads, K, epsilon=0.05, seed=212)
        for kmer in extract_kmers(reads[0][:200], K):
            assert graph.node_weight(kmer) > 0
            assert graph.contains(kmer)

    def test_query_validation(self, corpus):
        reads, _ = corpus
        graph = WeightedDeBruijn.build(reads, K, epsilon=0.05, seed=212)
        with pytest.raises(ValueError):
            graph.edge_weight("ACG")
        with pytest.raises(ValueError):
            graph.node_weight("ACG")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            WeightedDeBruijn(1, 100)


class TestRegistryNewNames:
    def test_new_dynamic_filters_constructible(self):
        from repro.core.registry import make_filter

        for name in ("vector-quotient", "morton", "dynamic-cuckoo", "bentley-saxe-xor"):
            filt = make_filter(name, capacity=300, epsilon=0.01, seed=1)
            filt.insert("key")
            assert filt.may_contain("key")

    def test_seesaw_constructible(self):
        from repro.core.registry import make_filter

        sscf = make_filter("seesaw", keys=["bad1", "bad2"], epsilon=0.05, seed=1)
        assert sscf.may_contain("bad1")

    def test_rencoder_signposted(self):
        from repro.core.registry import make_filter

        with pytest.raises(ValueError, match="specialised"):
            make_filter("rencoder", keys=[1, 2])
