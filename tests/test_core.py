"""Tests for the core API: registry, analysis formulas, interfaces."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis import (
    bloom_bits_per_key,
    bloom_fpr,
    bloom_optimal_hashes,
    cuckoo_bits_per_key,
    information_lower_bound_bits_per_key,
    quotient_bits_per_key,
    range_filter_lower_bound_bits_per_key,
    ribbon_bits_per_key,
    xor_bits_per_key,
    xor_plus_bits_per_key,
)
from repro.core.interfaces import (
    AdaptiveFilter,
    CountingFilter,
    DynamicFilter,
    ExpandableFilter,
    StaticFilter,
)
from repro.core.registry import FEATURE_MATRIX, available_filters, make_filter


class TestAnalysis:
    def test_lower_bound(self):
        assert information_lower_bound_bits_per_key(2**-8) == 8.0

    def test_paper_ordering_at_practical_epsilon(self):
        """§2/§2.7: lower bound < ribbon < xor+ < xor < bloom; QF/cuckoo add
        constant overhead to the bound."""
        for eps in (2**-8, 2**-16):
            lb = information_lower_bound_bits_per_key(eps)
            assert lb < ribbon_bits_per_key(eps) < xor_plus_bits_per_key(eps)
            assert xor_plus_bits_per_key(eps) < xor_bits_per_key(eps)
            assert xor_bits_per_key(eps) < bloom_bits_per_key(eps)
            assert quotient_bits_per_key(eps) == pytest.approx(lb + 2.125)
            assert cuckoo_bits_per_key(eps) == pytest.approx(lb + 3)

    def test_bloom_overhead_factor(self):
        assert bloom_bits_per_key(0.01) / information_lower_bound_bits_per_key(
            0.01
        ) == pytest.approx(1.44, abs=0.01)

    def test_quotient_overhead_percentages(self):
        """The paper's worked example: at ε=2⁻⁸ the 2.125n overhead is ~25%,
        at 2⁻¹⁶ it is ~12.5%."""
        assert 2.125 / 8 == pytest.approx(0.266, abs=0.01)
        assert 2.125 / 16 == pytest.approx(0.133, abs=0.01)

    def test_bloom_fpr_and_k(self):
        assert bloom_optimal_hashes(14.4) == 10
        # 14.4 bits/key at optimal k ↔ ε = 0.001; 9.57 bits/key ↔ ε = 0.01.
        assert bloom_fpr(14.4, 10) == pytest.approx(0.001, rel=0.5)
        assert bloom_fpr(bloom_bits_per_key(0.01), 7) == pytest.approx(0.01, rel=0.5)
        assert bloom_fpr(0, 1) == 1.0

    def test_range_lower_bound(self):
        assert range_filter_lower_bound_bits_per_key(0.01, 1 << 10) == pytest.approx(
            math.log2((1 << 10) / 0.01)
        )
        with pytest.raises(ValueError):
            range_filter_lower_bound_bits_per_key(0.01, 0)

    def test_epsilon_validation(self):
        for fn in (
            bloom_bits_per_key,
            quotient_bits_per_key,
            cuckoo_bits_per_key,
            xor_bits_per_key,
            xor_plus_bits_per_key,
            ribbon_bits_per_key,
        ):
            with pytest.raises(ValueError):
                fn(0.0)
            with pytest.raises(ValueError):
                fn(1.0)


class TestRegistry:
    DYNAMIC_NAMES = [
        "bloom", "blocked-bloom", "prefix", "quotient", "cuckoo",
        "vector-quotient", "morton",
        "counting-bloom", "dleft", "spectral-bloom", "cqf",
        "chained", "scalable-bloom", "naive-expandable-qf",
        "dynamic-cuckoo", "bentley-saxe-xor",
        "taffy-cuckoo", "infinifilter", "aleph",
        "adaptive-cuckoo", "telescoping", "adaptive-quotient",
    ]
    STATIC_NAMES = ["xor", "xor-plus", "ribbon"]

    def test_matrix_covers_all_sections(self):
        sections = {f.paper_section for f in FEATURE_MATRIX.values()}
        assert {"§2", "§2.1", "§2.2", "§2.3", "§2.4", "§2.5", "§2.6", "§2.7", "§2.8"} <= sections

    def test_available_filters_sorted(self):
        names = available_filters()
        assert names == sorted(names)
        assert "quotient" in names

    @pytest.mark.parametrize("name", DYNAMIC_NAMES)
    def test_make_dynamic_filters(self, name):
        filt = make_filter(name, capacity=200, epsilon=0.01, seed=1)
        filt.insert("hello")
        assert filt.may_contain("hello")
        features = FEATURE_MATRIX[name]
        if features.deletes:
            filt.delete("hello")
            assert not filt.may_contain("hello")

    @pytest.mark.parametrize("name", STATIC_NAMES)
    def test_make_static_filters(self, name):
        filt = make_filter(name, keys=["a", "b", "c"], epsilon=0.01, seed=1)
        assert all(filt.may_contain(k) for k in ("a", "b", "c"))

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown filter"):
            make_filter("magic")

    def test_static_requires_keys(self):
        with pytest.raises(ValueError, match="static"):
            make_filter("xor", capacity=10)

    def test_dynamic_requires_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            make_filter("bloom", keys=[1, 2])

    def test_specialised_constructors_signposted(self):
        with pytest.raises(ValueError, match="specialised"):
            make_filter("surf", keys=[1, 2])

    def test_feature_flags_match_classes(self):
        from repro.expandable.taffy import TaffyCuckooFilter

        taffy = FEATURE_MATRIX["taffy-cuckoo"]
        assert taffy.expandable and not taffy.deletes
        assert issubclass(TaffyCuckooFilter, ExpandableFilter)
        assert not TaffyCuckooFilter.supports_deletes


class TestInterfaceHierarchy:
    def test_counting_is_dynamic(self):
        assert issubclass(CountingFilter, DynamicFilter)

    def test_adaptive_is_dynamic(self):
        assert issubclass(AdaptiveFilter, DynamicFilter)

    def test_static_inserts_blocked(self):
        from repro.filters.xor import XorFilter

        assert issubclass(XorFilter, StaticFilter)

    def test_insert_autogrow_contract(self):
        from repro.expandable.chaining import ScalableBloomFilter

        sbf = ScalableBloomFilter(8, 0.01, seed=1)
        for i in range(100):
            sbf.insert_autogrow(i)
        assert all(sbf.may_contain(i) for i in range(100))
