"""Tests for the range filters (§2.5)."""

from __future__ import annotations

from bisect import bisect_left

import pytest

from repro.rangefilters.arf import AdaptiveRangeFilter
from repro.rangefilters.grafite import Grafite
from repro.rangefilters.prefix_bloom import PrefixBloomFilter
from repro.rangefilters.proteus import Proteus
from repro.rangefilters.rosetta import Rosetta
from repro.rangefilters.snarf import SNARF
from repro.rangefilters.surf import SuRF
from repro.workloads.synthetic import (
    correlated_range_queries,
    random_key_set,
    random_range_queries,
)

KEY_BITS = 32
UNIVERSE = 1 << KEY_BITS


@pytest.fixture(scope="module")
def range_keys():
    return random_key_set(2000, seed=41, universe=UNIVERSE)


def truly_intersects(sorted_keys, lo, hi):
    i = bisect_left(sorted_keys, lo)
    return i < len(sorted_keys) and sorted_keys[i] <= hi


def make_filters(keys):
    return {
        "surf": SuRF(keys, key_bits=KEY_BITS, real_suffix_bits=4, seed=1),
        "rosetta": Rosetta(
            keys, key_bits=KEY_BITS, bits_per_key=20, n_levels=12, seed=1
        ),
        "prefix-bloom": PrefixBloomFilter(
            keys, key_bits=KEY_BITS, prefix_bits=KEY_BITS - 10, seed=1
        ),
        "proteus": Proteus(keys, key_bits=KEY_BITS, bits_per_key=20, seed=1),
        "snarf": SNARF(keys, key_bits=KEY_BITS, multiplier=16, seed=1),
        "grafite": Grafite(
            keys, key_bits=KEY_BITS, max_range=1 << 12, epsilon=0.02, seed=1
        ),
    }


class TestNoFalseNegatives:
    """The one inviolable contract: a range containing a key must hit."""

    @pytest.mark.parametrize(
        "name",
        ["surf", "rosetta", "prefix-bloom", "proteus", "snarf", "grafite"],
    )
    def test_ranges_containing_keys_hit(self, range_keys, name):
        filt = make_filters(range_keys)[name]
        for key in range_keys[::20]:
            lo = max(0, key - 100)
            hi = min(UNIVERSE - 1, key + 100)
            if hi - lo + 1 > (1 << 12):  # grafite's max_range bound
                continue
            assert filt.may_intersect(lo, hi), f"{name} missed a real key"

    @pytest.mark.parametrize(
        "name",
        ["surf", "rosetta", "prefix-bloom", "proteus", "snarf", "grafite"],
    )
    def test_point_queries_on_members_hit(self, range_keys, name):
        filt = make_filters(range_keys)[name]
        assert all(filt.may_intersect(k, k) for k in range_keys[::10])


class TestFiltering:
    def test_all_filters_reject_most_empty_ranges(self, range_keys):
        queries = random_range_queries(400, 256, seed=5, universe=UNIVERSE)
        empty = [
            (lo, hi) for lo, hi in queries if not truly_intersects(range_keys, lo, hi)
        ]
        assert len(empty) > 100
        for name, filt in make_filters(range_keys).items():
            fps = sum(1 for lo, hi in empty if filt.may_intersect(lo, hi))
            assert fps / len(empty) < 0.5, f"{name} provides no filtering"

    def test_rejects_inverted_range(self, range_keys):
        for name, filt in make_filters(range_keys).items():
            with pytest.raises(ValueError):
                filt.may_intersect(10, 5)


class TestSuRFSpecifics:
    def test_correlated_queries_destroy_surf(self, range_keys):
        """§2.5: queries just above existing keys defeat the trie intervals."""
        surf = SuRF(range_keys, key_bits=KEY_BITS, real_suffix_bits=0, seed=2)
        queries = correlated_range_queries(range_keys, 300, 4, gap=1, seed=3)
        empty = [q for q in queries if not truly_intersects(range_keys, *q)]
        fps = sum(1 for lo, hi in empty if surf.may_intersect(lo, hi))
        assert fps / max(1, len(empty)) > 0.5  # near-total FPR

    def test_real_suffix_bits_reduce_fpr(self, range_keys):
        base = SuRF(range_keys, key_bits=KEY_BITS, real_suffix_bits=0, seed=2)
        real8 = SuRF(range_keys, key_bits=KEY_BITS, real_suffix_bits=8, seed=2)
        queries = correlated_range_queries(range_keys, 300, 4, gap=3, seed=4)
        empty = [q for q in queries if not truly_intersects(range_keys, *q)]
        fp_base = sum(1 for lo, hi in empty if base.may_intersect(lo, hi))
        fp_real = sum(1 for lo, hi in empty if real8.may_intersect(lo, hi))
        assert fp_real <= fp_base

    def test_hash_suffix_helps_points_only(self, range_keys):
        surf = SuRF(range_keys, key_bits=KEY_BITS, hash_suffix_bits=8, seed=2)
        negatives = [k + 1 for k in range_keys if k + 1 not in set(range_keys)]
        fps = sum(1 for k in negatives[:500] if surf.may_contain(k))
        assert fps / 500 < 0.2

    def test_adversarial_keys_blow_up_space(self):
        # Pairs of keys sharing long unique prefixes force deep trie paths.
        benign = random_key_set(500, seed=6, universe=UNIVERSE)
        adversarial = []
        for key in benign[:250]:
            adversarial.extend([key, key ^ 1])  # differ only in the last bit
        s_benign = SuRF(benign, key_bits=KEY_BITS, seed=7)
        s_adv = SuRF(adversarial, key_bits=KEY_BITS, seed=7)
        assert s_adv.bits_per_key > 1.5 * s_benign.bits_per_key

    def test_duplicates_and_empty(self):
        assert not SuRF([], key_bits=KEY_BITS).may_intersect(0, UNIVERSE - 1)
        surf = SuRF([5, 5, 5], key_bits=KEY_BITS)
        assert len(surf) == 1


class TestRosettaSpecifics:
    def test_fpr_grows_with_range_length(self, range_keys):
        rosetta = Rosetta(
            range_keys, key_bits=KEY_BITS, bits_per_key=20, n_levels=10, seed=8
        )
        fprs = []
        for length in (1, 64, 4096):
            queries = random_range_queries(200, length, seed=9, universe=UNIVERSE)
            empty = [q for q in queries if not truly_intersects(range_keys, *q)]
            fps = sum(1 for lo, hi in empty if rosetta.may_intersect(lo, hi))
            fprs.append(fps / max(1, len(empty)))
        assert fprs[0] <= fprs[-1]

    def test_long_ranges_get_no_filtering(self, range_keys):
        rosetta = Rosetta(
            range_keys, key_bits=KEY_BITS, bits_per_key=20, n_levels=6, seed=8
        )
        # Ranges far beyond 2^(levels-1) decompose into unfiltered blocks.
        assert rosetta.max_filtered_range() == 32

    def test_probe_counting(self, range_keys):
        rosetta = Rosetta(
            range_keys, key_bits=KEY_BITS, bits_per_key=20, n_levels=10, seed=8
        )
        rosetta.may_intersect(0, 1 << 14)
        long_probes = rosetta.last_query_probes
        rosetta.may_intersect(5, 5)
        assert rosetta.last_query_probes < long_probes

    def test_robust_against_correlated_point_queries(self, range_keys):
        rosetta = Rosetta(
            range_keys, key_bits=KEY_BITS, bits_per_key=20, n_levels=10, seed=8
        )
        key_set = set(range_keys)
        negatives = [k + 1 for k in range_keys if k + 1 not in key_set][:400]
        fps = sum(1 for k in negatives if rosetta.may_contain(k))
        assert fps / len(negatives) < 0.1


class TestGrafiteSpecifics:
    def test_robust_under_correlation(self, range_keys):
        grafite = Grafite(
            range_keys, key_bits=KEY_BITS, max_range=1 << 12, epsilon=0.02, seed=10
        )
        queries = correlated_range_queries(range_keys, 400, 8, gap=2, seed=11)
        empty = [q for q in queries if not truly_intersects(range_keys, *q)]
        fps = sum(1 for lo, hi in empty if grafite.may_intersect(lo, hi))
        assert fps / max(1, len(empty)) < 0.15

    def test_range_longer_than_l_rejected(self, range_keys):
        grafite = Grafite(range_keys, key_bits=KEY_BITS, max_range=16, seed=10)
        with pytest.raises(ValueError):
            grafite.may_intersect(0, 100)

    def test_space_near_lower_bound(self, range_keys):
        grafite = Grafite(
            range_keys, key_bits=KEY_BITS, max_range=1 << 12, epsilon=0.02, seed=10
        )
        assert grafite.bits_per_key <= 1.4 * grafite.theoretical_bits_per_key()


class TestARFSpecifics:
    def test_starts_with_no_filtering(self, range_keys):
        arf = AdaptiveRangeFilter(range_keys, key_bits=KEY_BITS)
        assert arf.may_intersect(0, 10)  # untrained: everything "occupied"

    def test_training_fixes_repeated_queries(self, range_keys):
        arf = AdaptiveRangeFilter(range_keys, key_bits=KEY_BITS, max_nodes=1 << 14)
        queries = random_range_queries(100, 64, seed=12, universe=UNIVERSE)
        empty = [q for q in queries if not truly_intersects(range_keys, *q)]
        arf.train(empty)
        fps = sum(1 for lo, hi in empty if arf.may_intersect(lo, hi))
        assert fps / max(1, len(empty)) < 0.1  # trained regions now answer no

    def test_never_false_negative_after_training(self, range_keys):
        arf = AdaptiveRangeFilter(range_keys, key_bits=KEY_BITS)
        queries = random_range_queries(50, 64, seed=13, universe=UNIVERSE)
        arf.train([q for q in queries if not truly_intersects(range_keys, *q)])
        for key in range_keys[::40]:
            assert arf.may_intersect(key, key)

    def test_budget_respected(self, range_keys):
        arf = AdaptiveRangeFilter(range_keys, key_bits=KEY_BITS, max_nodes=64)
        queries = random_range_queries(200, 64, seed=14, universe=UNIVERSE)
        arf.train([q for q in queries if not truly_intersects(range_keys, *q)])
        assert arf.n_nodes <= 66

    def test_escalate_rejects_nonempty(self, range_keys):
        arf = AdaptiveRangeFilter(range_keys, key_bits=KEY_BITS)
        key = range_keys[0]
        with pytest.raises(ValueError):
            arf.escalate(key, key)


class TestProteusSpecifics:
    def test_sample_driven_tuning_runs(self, range_keys):
        sample = random_range_queries(50, 128, seed=15, universe=UNIVERSE)
        proteus = Proteus(
            range_keys,
            key_bits=KEY_BITS,
            bits_per_key=18,
            sample_queries=sample,
            seed=16,
        )
        assert 1 <= proteus.l1 < proteus.l2 <= KEY_BITS

    def test_explicit_l1_l2(self, range_keys):
        proteus = Proteus(range_keys, key_bits=KEY_BITS, l1=12, l2=24, seed=16)
        assert proteus.l1 == 12 and proteus.l2 == 24

    def test_bad_l1_l2_rejected(self, range_keys):
        with pytest.raises(ValueError):
            Proteus(range_keys, key_bits=KEY_BITS, l1=24, l2=12)
