"""Batch-API contract tests (docs/performance.md) over the registry.

The contract: for every filter family, ``may_contain_many(keys)`` equals
element-wise ``may_contain``, ``insert_many`` is equivalent to inserting
in order (so no false negatives afterwards), and the base-class
scalar-loop defaults satisfy the same contract as the vectorised
overrides.  Checked with hypothesis across mixed int/str/bytes batches,
plus numpy-array inputs and the instrumentation wrapper.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.concurrent import ShardedFilter
from repro.core.interfaces import DynamicFilter, as_key_list
from repro.core.registry import FEATURE_MATRIX, make_filter
from repro.obs import InstrumentedFilter, MetricsRegistry


def _factory_constructible(f) -> bool:
    return f.inserts and not f.values and not f.ranges


DYNAMIC_NAMES = sorted(
    name
    for name, f in FEATURE_MATRIX.items()
    if _factory_constructible(f) and f.kind in ("dynamic", "semi-dynamic")
)
# "sharded:<inner>" wraps the inner family in a lock-striped ShardedFilter —
# its grouped batch path must satisfy the same contract as the flat filters.
DYNAMIC_NAMES += ["sharded:bloom", "sharded:cuckoo"]
STATIC_NAMES = ["xor", "xor-plus", "ribbon"]


def _make_dynamic(name: str, *, capacity: int, epsilon: float, seed: int):
    if name.startswith("sharded:"):
        inner = name.split(":", 1)[1]
        n_shards = 4
        return ShardedFilter(
            lambda i: make_filter(inner, capacity=capacity // n_shards + 8,
                                  epsilon=epsilon, seed=seed + i),
            n_shards=n_shards, seed=seed,
        )
    return make_filter(name, capacity=capacity, epsilon=epsilon, seed=seed)

def _hash_identity(key):
    # '' and b'' (and any str/bytes pair with equal utf-8 encoding) fold to
    # the same pre-mix hash, so static builds see them as duplicate keys.
    return key.encode("utf-8") if isinstance(key, str) else key


keys_strategy = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=2**48),
        st.text(min_size=0, max_size=12),
        st.binary(max_size=8),
    ),
    max_size=50,
    unique_by=_hash_identity,
)


def _assert_batch_matches_scalar(filt, probe_keys):
    got = filt.may_contain_many(probe_keys)
    assert isinstance(got, np.ndarray) and got.dtype == bool
    assert got.shape == (len(probe_keys),)
    assert got.tolist() == [filt.may_contain(k) for k in probe_keys]


@pytest.mark.parametrize("name", DYNAMIC_NAMES)
class TestDynamicBatchContract:
    @given(keys=keys_strategy)
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_scalar_and_no_false_negatives(self, name, keys):
        filt = _make_dynamic(name, capacity=256, epsilon=0.05, seed=7)
        inserted = keys[: len(keys) // 2 + 1]
        filt.insert_many(inserted)
        _assert_batch_matches_scalar(filt, keys)
        if inserted:
            assert filt.may_contain_many(inserted).all()

    @given(keys=keys_strategy)
    @settings(max_examples=5, deadline=None)
    def test_insert_many_equals_insert_loop(self, name, keys):
        batched = _make_dynamic(name, capacity=256, epsilon=0.05, seed=7)
        batched.insert_many(keys)
        looped = _make_dynamic(name, capacity=256, epsilon=0.05, seed=7)
        for key in keys:
            looped.insert(key)
        assert len(batched) == len(looped)
        probes = keys + [f"probe-{i}" for i in range(8)]
        assert (
            batched.may_contain_many(probes).tolist()
            == looped.may_contain_many(probes).tolist()
        )


@pytest.mark.parametrize("name", STATIC_NAMES)
class TestStaticBatchContract:
    @given(keys=keys_strategy)
    @settings(max_examples=10, deadline=None)
    def test_batch_equals_scalar(self, name, keys):
        filt = make_filter(name, keys=keys, epsilon=0.05, seed=7)
        probes = keys + [f"absent-{i}" for i in range(16)] + [2**50 + 1]
        _assert_batch_matches_scalar(filt, probes)
        if keys:
            assert filt.may_contain_many(keys).all()


class _ScalarOnlyFilter(DynamicFilter):
    """Minimal filter exercising the base-class scalar-loop defaults."""

    def __init__(self):
        self._keys = set()

    def insert(self, key):
        self._keys.add(key)

    def may_contain(self, key):
        return key in self._keys

    def __len__(self):
        return len(self._keys)

    @property
    def size_in_bits(self):
        return 0


class TestDefaultFallback:
    def test_scalar_loop_defaults(self):
        filt = _ScalarOnlyFilter()
        filt.insert_many([1, 2, "three", b"four"])
        assert len(filt) == 4
        got = filt.may_contain_many([1, 2, "three", b"four", 5, "six"])
        assert got.dtype == bool
        assert got.tolist() == [True, True, True, True, False, False]

    def test_numpy_array_keys_hit_scalar_fallback_as_python_ints(self):
        # np.int64 is not `int`; the default must normalise before hashing.
        filt = _ScalarOnlyFilter()
        filt.insert_many(np.array([10, 20, 30]))
        assert sorted(filt._keys) == [10, 20, 30]
        assert filt.may_contain_many(np.array([10, 20, 40])).tolist() == [
            True, True, False,
        ]

    def test_empty_batches(self):
        for name in ("bloom", "cuckoo", "quotient"):
            filt = make_filter(name, capacity=64, epsilon=0.05, seed=7)
            filt.insert_many([])
            assert filt.may_contain_many([]).shape == (0,)
            assert len(filt) == 0

    def test_as_key_list(self):
        out = as_key_list(np.array([1, 2, 3]))
        assert out == [1, 2, 3] and all(type(k) is int for k in out)
        assert as_key_list((1, "a")) == [1, "a"]


class TestNumpyArrayInputs:
    def test_vectorised_families_accept_numpy_batches(self):
        members = np.arange(500, dtype=np.int64)
        probes = np.arange(400, 900, dtype=np.int64)
        for name in ("bloom", "blocked-bloom", "cuckoo", "quotient"):
            filt = make_filter(name, capacity=1000, epsilon=0.01, seed=3)
            filt.insert_many(members)
            got = filt.may_contain_many(probes)
            want = [filt.may_contain(int(k)) for k in probes]
            assert got.tolist() == want, name


class TestInstrumentedBatch:
    def test_batch_probes_count_per_key(self, small_keys):
        members, negatives = small_keys
        registry = MetricsRegistry()
        inner = make_filter("bloom", capacity=600, epsilon=0.01, seed=5)
        filt = InstrumentedFilter(
            inner, name="b", registry=registry, ground_truth=set(members)
        )
        filt.insert_many(members)
        batch = members[:100] + negatives[:200]
        results = filt.may_contain_many(batch)
        assert results[:100].all()
        assert filt.probes == 300
        assert filt.positives == int(results.sum())
        assert filt.negatives == 300 - int(results.sum())
        # Every positive beyond the 100 true members is a false positive.
        assert filt.false_positives == int(results.sum()) - 100
        assert filt.probes == filt.may_contain_many([]).shape[0] + 300

    def test_batch_falls_back_for_scalar_only_inner(self):
        registry = MetricsRegistry()
        filt = InstrumentedFilter(
            _ScalarOnlyFilter(), name="s", registry=registry
        )
        filt.insert_many([1, 2, 3])
        assert filt.may_contain_many([1, 2, 9]).tolist() == [True, True, False]
        assert filt.probes == 3 and filt.positives == 2


class TestBatchApps:
    def test_lsm_multi_get_matches_get(self):
        from repro.apps.lsm import LSMConfig, LSMTree

        tree = LSMTree(LSMConfig(memtable_entries=32, seed=3))
        for i in range(500):
            tree.put(i, i * 10)
        for i in range(0, 100, 7):
            tree.delete(i)
        probe = list(range(-50, 600, 3))
        want = [tree.get(k, default="miss") for k in probe]
        got = tree.multi_get(probe, default="miss")
        assert got == want
        assert tree.multi_get([]) == []

    def test_lsm_multi_get_issues_fewer_device_reads(self):
        from repro.apps.lsm import LSMConfig, LSMTree

        tree = LSMTree(LSMConfig(memtable_entries=32, seed=3))
        for i in range(500):
            tree.put(i, i)
        tree.flush()
        probe = list(range(200, 400))
        before = tree.device.stats.reads
        tree.multi_get(probe)
        batch_reads = tree.device.stats.reads - before
        before = tree.device.stats.reads
        for key in probe:
            tree.get(key)
        scalar_reads = tree.device.stats.reads - before
        # One read per run per batch vs one per (key, probed run).
        assert batch_reads <= tree.n_runs
        assert batch_reads < scalar_reads

    def test_lsm_multi_get_maplet_mode(self):
        from repro.apps.lsm import LSMConfig, LSMTree

        tree = LSMTree(
            LSMConfig(memtable_entries=16, use_maplet=True, seed=3)
        )
        for i in range(200):
            tree.put(i, -i)
        probe = list(range(-20, 250, 2))
        assert tree.multi_get(probe) == [tree.get(k) for k in probe]

    def test_filtered_dictionary_get_many(self, small_keys):
        from repro.adaptive.dictionary import FilteredDictionary

        members, negatives = small_keys
        filt = make_filter("bloom", capacity=600, epsilon=0.01, seed=5)
        d = FilteredDictionary(filt)
        for key in members:
            d.put(key, str(key))
        probe = members[:50] + negatives[:100]
        got = d.get_many(probe, default="miss")
        want = [d.get(k, "miss") for k in probe]
        assert got == want
        assert d.get_many([]) == []

    def test_filtered_dictionary_get_many_adaptive_feedback(self, small_keys):
        from repro.adaptive.dictionary import FilteredDictionary

        members, negatives = small_keys
        filt = make_filter("adaptive-cuckoo", capacity=600, epsilon=0.05, seed=5)
        d = FilteredDictionary(filt)
        for key in members[:300]:
            d.put(key, key)
        d.get_many(negatives)
        assert d.stats.adaptations_fed_back == d.stats.false_positives
        # Adapted keys stop false-positiving on the next batch.
        second = d.stats.false_positives
        d.get_many(negatives)
        assert d.stats.false_positives - second <= second
