"""Tests for standard and blocked Bloom filters."""

from __future__ import annotations

import math

import pytest

from repro.core.analysis import bloom_bits_per_key
from repro.filters.bloom import BlockedBloomFilter, BloomFilter
from tests.conftest import measured_fpr


class TestBloomFilter:
    def test_no_false_negatives(self, small_keys):
        members, _ = small_keys
        bloom = BloomFilter(len(members), 0.01, seed=1)
        for key in members:
            bloom.insert(key)
        assert all(bloom.may_contain(k) for k in members)

    def test_fpr_near_target(self, medium_keys):
        members, negatives = medium_keys
        bloom = BloomFilter(len(members), 0.01, seed=1)
        for key in members:
            bloom.insert(key)
        assert measured_fpr(bloom, negatives) <= 0.02

    def test_space_matches_formula(self):
        bloom = BloomFilter(1000, 2**-8)
        expected = 1000 * bloom_bits_per_key(2**-8)
        assert math.isclose(bloom.size_in_bits, expected, rel_tol=0.01)

    def test_fill_fraction_half_at_capacity(self, medium_keys):
        members, _ = medium_keys
        bloom = BloomFilter(len(members), 0.01, seed=2)
        for key in members:
            bloom.insert(key)
        assert 0.4 < bloom.fill_fraction < 0.6

    def test_contains_dunder(self):
        bloom = BloomFilter(10, 0.01)
        bloom.insert("k")
        assert "k" in bloom

    def test_len(self):
        bloom = BloomFilter(10, 0.01)
        bloom.insert("a")
        bloom.insert("b")
        assert len(bloom) == 2

    def test_no_delete_support(self):
        bloom = BloomFilter(10, 0.01)
        bloom.insert("a")
        with pytest.raises(NotImplementedError):
            bloom.delete("a")

    def test_custom_hash_count(self):
        bloom = BloomFilter(100, 0.01, n_hashes=2)
        assert bloom.n_hashes == 2

    def test_from_keys(self):
        bloom = BloomFilter.from_keys(["x", "y"], 0.01)
        assert "x" in bloom and "y" in bloom and len(bloom) == 2

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 0.01)
        with pytest.raises(ValueError):
            BloomFilter(10, 0.0)
        with pytest.raises(ValueError):
            BloomFilter(10, 0.01, n_hashes=0)

    def test_empty_bits_per_key_is_zero(self):
        # 0.0, not nan: nan silently poisons benchmark aggregates.
        assert BloomFilter(10, 0.01).bits_per_key == 0.0


class TestBlockedBloomFilter:
    def test_no_false_negatives(self, small_keys):
        members, _ = small_keys
        bloom = BlockedBloomFilter(len(members), 0.01, seed=1)
        for key in members:
            bloom.insert(key)
        assert all(bloom.may_contain(k) for k in members)

    def test_fpr_reasonable(self, medium_keys):
        # Blocked Bloom pays a modest FPR penalty for one-access queries.
        members, negatives = medium_keys
        bloom = BlockedBloomFilter(len(members), 0.01, seed=1)
        for key in members:
            bloom.insert(key)
        assert measured_fpr(bloom, negatives) <= 0.05

    def test_positions_within_one_block(self):
        bloom = BlockedBloomFilter(10000, 0.01, seed=3)
        for key in range(50):
            positions = bloom._positions(key)
            blocks = {p // BlockedBloomFilter.BLOCK_BITS for p in positions}
            assert len(blocks) == 1

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BlockedBloomFilter(0, 0.01)
        with pytest.raises(ValueError):
            BlockedBloomFilter(10, 1.0)
