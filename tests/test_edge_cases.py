"""Boundary and failure-injection tests across the library."""

from __future__ import annotations

import pytest

from repro.core.errors import FilterFullError
from repro.core.registry import FEATURE_MATRIX, make_filter


class TestTinyCapacities:
    @pytest.mark.parametrize(
        "name",
        ["bloom", "quotient", "cuckoo", "vector-quotient", "morton", "crate",
         "cqf", "prefix", "counting-bloom"],
    )
    def test_capacity_one(self, name):
        filt = make_filter(name, capacity=1, epsilon=0.1, seed=1)
        filt.insert("only")
        assert filt.may_contain("only")

    @pytest.mark.parametrize("name", ["xor", "xor-plus", "ribbon"])
    def test_empty_static(self, name):
        filt = make_filter(name, keys=[], epsilon=0.1, seed=1)
        assert not filt.may_contain("anything")
        assert len(filt) == 0

    @pytest.mark.parametrize("name", ["xor", "xor-plus", "ribbon"])
    def test_singleton_static(self, name):
        filt = make_filter(name, keys=["one"], epsilon=0.1, seed=1)
        assert filt.may_contain("one")


class TestExtremeEpsilon:
    def test_very_small_epsilon(self):
        filt = make_filter("quotient", capacity=64, epsilon=2**-30, seed=2)
        filt.insert("x")
        assert filt.may_contain("x")
        # Essentially zero false positives at this width.
        fps = sum(1 for i in range(5000) if filt.may_contain(i))
        assert fps == 0

    def test_near_one_epsilon(self):
        filt = make_filter("bloom", capacity=64, epsilon=0.5, seed=2)
        for i in range(64):
            filt.insert(i)
        assert all(filt.may_contain(i) for i in range(64))

    def test_invalid_epsilon_everywhere(self):
        for eps in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                make_filter("quotient", capacity=10, epsilon=eps)
            with pytest.raises(ValueError):
                make_filter("cuckoo", capacity=10, epsilon=eps)


class TestFullnessSignals:
    @pytest.mark.parametrize("name", ["quotient", "cqf", "telescoping", "adaptive-quotient"])
    def test_overfill_raises_not_corrupts(self, name):
        filt = make_filter(name, capacity=16, epsilon=0.1, seed=3)
        inserted = []
        with pytest.raises(FilterFullError):
            for i in range(10_000):
                filt.insert(i)
                inserted.append(i)
        # Everything accepted before the failure is still present.
        assert all(filt.may_contain(k) for k in inserted)

    def test_insert_autogrow_never_full(self):
        filt = make_filter("infinifilter", capacity=16, epsilon=0.05, seed=4)
        for i in range(3000):
            filt.insert_autogrow(i)
        assert all(filt.may_contain(i) for i in range(0, 3000, 61))


class TestKeyTypes:
    @pytest.mark.parametrize("name", ["bloom", "quotient", "cuckoo", "crate"])
    def test_mixed_key_types_coexist(self, name):
        filt = make_filter(name, capacity=64, epsilon=0.01, seed=5)
        keys = [0, -1 & 0xFFFF, "", "unicode-ключ", b"\x00\xff", 2**47]
        for key in keys:
            filt.insert(key)
        assert all(filt.may_contain(k) for k in keys)

    def test_float_keys_rejected(self):
        filt = make_filter("bloom", capacity=8, epsilon=0.1)
        with pytest.raises(TypeError):
            filt.insert(3.14)  # type: ignore[arg-type]


class TestRangeBoundaries:
    def test_universe_edges(self):
        from repro.rangefilters.snarf import SNARF
        from repro.rangefilters.surf import SuRF

        top = (1 << 20) - 1
        keys = [0, top]
        for filt in (
            SuRF(keys, key_bits=20, seed=6),
            SNARF(keys, key_bits=20, multiplier=16, seed=6),
        ):
            assert filt.may_intersect(0, 0)
            assert filt.may_intersect(top, top)
            assert filt.may_intersect(0, top)

    def test_out_of_universe_keys_rejected(self):
        from repro.rangefilters.surf import SuRF

        with pytest.raises(ValueError):
            SuRF([1 << 30], key_bits=20)


class TestFeatureMatrixIntegrity:
    def test_every_entry_has_valid_kind(self):
        assert all(
            f.kind in ("static", "semi-dynamic", "dynamic")
            for f in FEATURE_MATRIX.values()
        )

    def test_static_filters_do_not_claim_inserts(self):
        for f in FEATURE_MATRIX.values():
            if f.kind == "static":
                assert not f.inserts or f.name == "seesaw"

    def test_deletes_imply_inserts(self):
        assert all(f.inserts for f in FEATURE_MATRIX.values() if f.deletes)
