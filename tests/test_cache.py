"""Cache tier tests: the cached stack must be answer-equivalent to the
uncached stack, and a stale ABSENT must be structurally impossible.

Three layers of evidence:

* unit tests for the mechanisms — :class:`BlockCache` LRU order and
  capacity bounds, TinyLFU scan resistance, :class:`CachedDevice`
  write-invalidate (never write-allocate), :class:`FilterResultCache`
  run-scoped memoization, :class:`NegativeLookupCache` epoch flushing,
  and the :class:`WindowedRate` storm detector behind the invalidation
  telemetry;
* a hypothesis state machine driving a cached LSM-tree and an uncached
  twin through identical put/delete/flush/lookup/multi-get/range/crash-
  recover sequences against an exact dict model — with faults off the
  two stacks must agree *exactly*, hit or miss (the cache survives the
  crash warm, which is the harshest staleness posture);
* storm tests through the full serving stack — under fault storms only
  the one-sided invariants are asserted (no false negative, no stale
  ABSENT, degraded MAYBE never cached), because injected fault draws
  diverge once a cache absorbs reads.
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.apps.lsm import LSMConfig, LSMTree
from repro.cache import (
    BlockCache,
    CachedDevice,
    FilterResultCache,
    NegativeLookupCache,
)
from repro.common.clock import Answer
from repro.common.faults import FaultInjector, FaultyBlockDevice
from repro.common.storage import BlockDevice
from repro.obs.metrics import WindowedRate
from repro.serve.served import ServeOutcome
from repro.serve.sim import build_stack, run_storm


class TestBlockCacheLRU:
    def test_hit_refreshes_recency(self):
        cache = BlockCache(3)
        for addr in "abc":
            cache.put(addr, addr.upper(), 1)
        cache.get("a")  # refresh: b is now the LRU victim
        cache.put("d", "D", 1)
        assert "a" in cache and "b" not in cache and len(cache) == 3

    def test_capacity_is_bytes_not_entries(self):
        cache = BlockCache(10)
        cache.put("big", b"x", 8)
        cache.put("small", b"y", 2)
        assert cache.used_bytes == 10
        cache.put("next", b"z", 5)  # must evict until it fits
        assert cache.used_bytes <= 10 and "big" not in cache

    def test_oversized_block_never_admitted(self):
        cache = BlockCache(4)
        assert not cache.put("huge", b"x", 5)
        assert len(cache) == 0 and cache.used_bytes == 0

    def test_stats_and_invalidate(self):
        cache = BlockCache(8)
        cache.put("a", 1, 1)
        hit, payload = cache.get("a")
        assert hit and payload == 1
        hit, _ = cache.get("nope")
        assert not hit
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert cache.invalidate("a") and not cache.invalidate("a")
        assert cache.stats.invalidations == 1 and cache.used_bytes == 0

    def test_clear_is_a_crash(self):
        cache = BlockCache(8)
        cache.put("a", 1, 1)
        cache.clear()
        assert len(cache) == 0 and cache.used_bytes == 0


class TestTinyLFUAdmission:
    def test_cold_scan_cannot_evict_hot_block(self):
        cache = BlockCache(2, policy="tinylfu", seed=9)
        for _ in range(6):
            cache.get("hot")  # build frequency (misses still touch the sketch)
        for _ in range(4):
            cache.get("warm")
        cache.put("hot", "H", 1)
        cache.put("warm", "W", 1)
        cache.get("cold")  # one touch: colder than the LRU victim
        assert not cache.put("cold", "C", 1)
        assert cache.stats.admission_rejects == 1
        assert "hot" in cache and "warm" in cache and "cold" not in cache

    def test_hotter_candidate_is_admitted(self):
        cache = BlockCache(2, policy="tinylfu", seed=9)
        for _ in range(3):
            cache.get("resident")
        cache.put("resident", "R", 1)
        cache.put("other", "O", 1)
        for _ in range(8):
            cache.get("riser")
        assert cache.put("riser", "!", 1)
        assert "riser" in cache and len(cache) == 2

    def test_admission_only_guards_eviction(self):
        cache = BlockCache(4, policy="tinylfu", seed=9)
        assert cache.put("anything", 1, 1)  # room left: no one to protect


class TestWindowedRate:
    def test_rate_counts_events_inside_window(self):
        w = WindowedRate(window=10)
        for t in range(5):
            w.record(t)
        assert w.rate(4) == 0.5
        assert w.rate(20) == 0.0  # everything aged out

    def test_record_returns_running_rate(self):
        w = WindowedRate(window=4)
        assert w.record(0) == 0.25
        assert w.record(1) == 0.5


class TestCachedDevice:
    def test_hit_skips_the_device_entirely(self):
        device = BlockDevice()
        cached = CachedDevice(device, BlockCache(1 << 20))
        cached.write("a", b"v1")
        assert cached.read("a") == b"v1"  # miss: populates
        reads_before = device.stats.reads
        assert cached.read("a") == b"v1"  # hit
        assert device.stats.reads == reads_before

    def test_write_invalidates_and_never_populates(self):
        device = BlockDevice()
        cache = BlockCache(1 << 20)
        cached = CachedDevice(device, cache)
        cached.write("a", b"v1")
        cached.read("a")
        cached.write("a", b"v2")
        assert "a" not in cache  # write-invalidate, not write-allocate
        assert cached.read("a") == b"v2"

    def test_lost_write_is_not_masked_by_the_cache(self):
        # The reason write-allocate is forbidden: a read-back after a
        # lost write must see the device's truth, not the cached intent.
        injector = FaultInjector(seed=5)
        device = FaultyBlockDevice(injector=injector)
        cached = CachedDevice(device, BlockCache(1 << 20))
        cached.write("a", b"v1")
        cached.read("a")
        injector.lost_write = 1.0
        cached.write("a", b"v2")  # acked, never lands
        injector.lost_write = 0.0
        assert cached.read("a") == b"v1", "read-back must expose the lost write"

    def test_ruin_invalidates_so_scrub_sees_corruption(self):
        injector = FaultInjector(seed=5)
        device = FaultyBlockDevice(injector=injector)
        cached = CachedDevice(device, BlockCache(1 << 20))
        cached.write("a", b"payload")
        cached.read("a")
        cached.ruin("a")
        assert cached.read("a") != b"payload"

    def test_delete_and_passthroughs(self):
        device = BlockDevice()
        cache = BlockCache(1 << 20)
        cached = CachedDevice(device, cache)
        cached.write("a", b"v", 7)
        cached.read("a")
        assert cached.exists("a") and cached.size_of("a") == 7
        assert cached.addresses() == ["a"]
        cached.delete("a")
        assert "a" not in cache and not cached.exists("a")
        assert len(cached) == 0


class TestFilterResultCache:
    def test_record_then_known(self):
        memo = FilterResultCache(max_entries=16)
        assert not memo.known_negative(1, "k")
        memo.record_negative(1, "k")
        assert memo.known_negative(1, "k")
        assert not memo.known_negative(2, "k")  # verdicts are per-run

    def test_drop_run_frees_only_that_run(self):
        memo = FilterResultCache(max_entries=16)
        for key in range(4):
            memo.record_negative(1, key)
            memo.record_negative(2, key)
        assert memo.drop_run(1) == 4
        assert len(memo) == 4
        assert not memo.known_negative(1, 0) and memo.known_negative(2, 0)

    def test_bounded_by_entry_count(self):
        memo = FilterResultCache(max_entries=4)
        for key in range(10):
            memo.record_negative(7, key)
        assert len(memo) == 4
        assert memo.known_negative(7, 9) and not memo.known_negative(7, 0)


class TestNegativeLookupCache:
    def test_epoch_bump_flushes_everything(self):
        neg = NegativeLookupCache(max_entries=16)
        neg.record_absent("k", epoch=0)
        assert neg.known_absent("k", epoch=0)
        assert not neg.known_absent("k", epoch=1)  # stale ABSENT impossible
        assert neg.epoch_flushes == 1 and len(neg) == 0

    def test_bounded(self):
        neg = NegativeLookupCache(max_entries=3)
        for key in range(6):
            neg.record_absent(key, epoch=0)
        assert len(neg) == 3


# --- cached stack ≡ uncached stack, against an exact model ------------------


def _lsm_config(seed: int = 3) -> LSMConfig:
    # Every cache-adjacent knob on: paged runs, charged filter reads,
    # per-run filter memo — the configuration with the most to go wrong.
    return LSMConfig(
        memtable_entries=8,
        page_entries=4,
        charge_filter_reads=True,
        filter_memo_entries=128,
        seed=seed,
    )


KEYS = st.integers(min_value=0, max_value=300)
VALUES = st.integers(min_value=0, max_value=1000)


class CachedEquivalenceMachine(RuleBasedStateMachine):
    """A cached LSM-tree, its uncached twin, and a dict, in lockstep."""

    def __init__(self):
        super().__init__()
        self.plain = LSMTree(_lsm_config())
        self.cache = BlockCache(16 * 1024, policy="lru", seed=5)
        self.cached_device = CachedDevice(BlockDevice(), self.cache)
        self.cached = LSMTree(_lsm_config(), device=self.cached_device)
        self.model: dict[int, int] = {}

    @rule(key=KEYS, value=VALUES)
    def put(self, key, value):
        self.plain.put(key, value)
        self.cached.put(key, value)
        self.model[key] = value

    @rule(key=KEYS)
    def delete(self, key):
        self.plain.delete(key)
        self.cached.delete(key)
        self.model.pop(key, None)

    @rule()
    def flush(self):
        self.plain.flush()
        self.cached.flush()

    @rule()
    def crash_and_recover(self):
        # Reopen both trees from their devices.  The block cache is
        # deliberately kept warm across the restart: every cached block
        # belongs to an immutable address, so a warm restart must be as
        # correct as a cold one.
        self.plain = LSMTree.recover(self.plain.device)
        self.cached = LSMTree.recover(self.cached_device)

    @rule(key=KEYS)
    def get_agrees(self, key):
        expected = self.model.get(key)
        assert self.plain.get(key) == expected
        assert self.cached.get(key) == expected

    @rule(keys=st.lists(KEYS, min_size=1, max_size=12))
    def multi_get_agrees(self, keys):
        expected = [self.model.get(k) for k in keys]
        assert self.plain.multi_get(keys) == expected
        assert self.cached.multi_get(keys) == expected

    @rule(lo=KEYS, width=st.integers(min_value=0, max_value=40))
    def range_agrees(self, lo, width):
        hi = lo + width
        expected = dict(sorted(
            (k, v) for k, v in self.model.items() if lo <= k <= hi
        ))
        assert self.plain.range_query(lo, hi) == expected
        assert self.cached.range_query(lo, hi) == expected

    @invariant()
    def cache_respects_capacity(self):
        assert self.cache.used_bytes <= self.cache.capacity_bytes
        assert self.cache.used_bytes >= 0


TestCachedEquivalenceMachine = CachedEquivalenceMachine.TestCase
TestCachedEquivalenceMachine.settings = settings(
    max_examples=15, stateful_step_count=30, deadline=None
)


# --- the serving stack under storms -----------------------------------------


def test_storm_with_cache_keeps_one_sided_contract():
    """Fault storm through the fully cached stack: zero false negatives,
    and the block cache actually absorbed traffic."""
    served, tree, _device, _injector, _latency, _clock = build_stack(
        seed=13, n_keys=400,
        cache_mb=0.25, cache_policy="tinylfu", negative_cache_entries=1024,
    )
    report = run_storm(served, seed=13, n_keys=400)
    assert report.false_negatives == 0
    assert tree.device.cache.stats.hits > 0
    assert report.goodput() > 0.5


def test_negative_cache_never_serves_stale_absent():
    served, tree, *_ = build_stack(seed=9, n_keys=100, negative_cache_entries=512)
    absent_key = 5000
    first = served.serve(absent_key)
    assert first.outcome is ServeOutcome.SERVED
    assert first.answer is Answer.ABSENT
    assert len(served.negative_cache) == 1
    second = served.serve(absent_key)
    assert second.answer is Answer.ABSENT
    assert served.negative_cache.hits == 1
    tree.put(absent_key, "late arrival")  # bumps the mutation epoch
    third = served.serve(absent_key)
    assert third.answer is Answer.PRESENT, "stale cached ABSENT served"
    assert served.negative_cache.epoch_flushes >= 1


def test_degraded_maybe_never_populates_negative_cache():
    served, _tree, _device, injector, _latency, _clock = build_stack(
        seed=21, n_keys=100, negative_cache_entries=256,
        # Filter probes must charge a device read, so that when the device
        # is fully broken the absent key cannot be ruled out for free.
        lsm_config=LSMConfig(
            memtable_entries=64, retry_attempts=3, seed=21,
            charge_filter_reads=True,
        ),
    )
    injector.transient_read = {"run": 1.0, "page": 1.0, "filter": 1.0, "*": 0.0}
    response = served.serve(4242)  # absent key, but nothing is readable
    assert response.outcome is not ServeOutcome.SERVED
    assert response.answer is Answer.MAYBE
    assert len(served.negative_cache) == 0, "a MAYBE must never be cached"


def test_cached_lookups_stay_one_sided_during_faults():
    """Direct (unserved) cached tree under a fault storm: ABSENT answers
    must stay truthful even while reads fail around the cache."""
    injector = FaultInjector(seed=31)
    device = FaultyBlockDevice(injector=injector)
    cached = CachedDevice(device, BlockCache(8 * 1024, seed=31))
    tree = LSMTree(_lsm_config(seed=31), device=cached)
    present = {k: f"v{k}" for k in range(0, 200, 2)}
    for key, value in present.items():
        tree.put(key, value)
    injector.transient_read = {"run": 0.4, "page": 0.4, "filter": 0.4, "*": 0.0}
    for key in range(200):
        result = tree.lookup(key, degrade_on_error=True)
        if key in present:
            assert result.state is not Answer.ABSENT, f"false negative for {key}"
        if result.state is Answer.ABSENT:
            assert key not in present, f"stale/false ABSENT for {key}"
    injector.transient_read = 0.0
