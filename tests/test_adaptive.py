"""Tests for the adaptive filters and the dictionary harness (§2.3)."""

from __future__ import annotations

import pytest

from repro.adaptive.adaptive_cuckoo import AdaptiveCuckooFilter
from repro.adaptive.adaptive_quotient import AdaptiveQuotientFilter
from repro.adaptive.dictionary import FilteredDictionary
from repro.adaptive.telescoping import TelescopingFilter
from repro.core.errors import DeletionError
from repro.filters.bloom import BloomFilter

ADAPTIVE_FACTORIES = [
    lambda n: AdaptiveCuckooFilter.for_capacity(n, 0.02, seed=3),
    lambda n: TelescopingFilter.for_capacity(n, 0.02, seed=3),
    lambda n: AdaptiveQuotientFilter.for_capacity(n, 0.02, seed=3),
]
ADAPTIVE_IDS = ["acf", "telescoping", "aqf"]


@pytest.fixture(params=ADAPTIVE_FACTORIES, ids=ADAPTIVE_IDS)
def make_adaptive(request):
    return request.param


class TestAdaptiveCommon:
    def test_no_false_negatives(self, make_adaptive, small_keys):
        members, _ = small_keys
        filt = make_adaptive(len(members))
        for key in members:
            filt.insert(key)
        assert all(filt.may_contain(k) for k in members)

    def test_adapting_fixes_the_false_positive(self, make_adaptive, small_keys):
        members, negatives = small_keys
        filt = make_adaptive(len(members))
        for key in members:
            filt.insert(key)
        fps = [k for k in negatives if filt.may_contain(k)]
        if not fps:
            pytest.skip("no false positive found at this seed")
        for fp_key in fps:
            filt.report_false_positive(fp_key)
        fixed = sum(1 for k in fps if not filt.may_contain(k))
        assert fixed >= 0.9 * len(fps)

    def test_adapting_preserves_members(self, make_adaptive, small_keys):
        members, negatives = small_keys
        filt = make_adaptive(len(members))
        for key in members:
            filt.insert(key)
        for key in negatives[:500]:
            if filt.may_contain(key):
                filt.report_false_positive(key)
        assert all(filt.may_contain(k) for k in members)

    def test_deletes(self, make_adaptive):
        filt = make_adaptive(100)
        filt.insert("x")
        filt.delete("x")
        assert not filt.may_contain("x")
        with pytest.raises(DeletionError):
            filt.delete("never")

    def test_report_on_nonmatching_key_is_noop(self, make_adaptive):
        filt = make_adaptive(100)
        filt.insert("a")
        before = filt.adaptations
        filt.report_false_positive("key-that-does-not-match-anything-hopefully")
        # Either it matched (rare) and adapted, or nothing changed.
        assert filt.adaptations >= before


class TestMonotonicity:
    def test_aqf_adaptation_is_monotone(self, small_keys):
        """Fixing key B must not resurrect previously fixed key A."""
        members, negatives = small_keys
        aqf = AdaptiveQuotientFilter.for_capacity(len(members), 0.05, seed=5)
        for key in members:
            aqf.insert(key)
        fps = [k for k in negatives if aqf.may_contain(k)]
        if len(fps) < 2:
            pytest.skip("need at least two false positives")
        fixed: list = []
        for fp_key in fps:
            aqf.report_false_positive(fp_key)
            fixed.append(fp_key)
            resurrected = [k for k in fixed if aqf.may_contain(k)]
            assert not resurrected

    def test_extension_bits_grow_with_adaptations(self, small_keys):
        members, negatives = small_keys
        aqf = AdaptiveQuotientFilter.for_capacity(len(members), 0.05, seed=5)
        for key in members:
            aqf.insert(key)
        base_size = aqf.size_in_bits
        for key in negatives[:2000]:
            if aqf.may_contain(key):
                aqf.report_false_positive(key)
        if aqf.adaptations:
            assert aqf.size_in_bits > base_size
            assert aqf.adaptivity_bits > 0


class TestFilteredDictionary:
    def test_get_put_round_trip(self):
        d = FilteredDictionary(BloomFilter(100, 0.01, seed=1))
        d.put("k", "v")
        assert d.get("k") == "v"
        assert "k" in d
        assert d.get("missing", "default") == "default"

    def test_negative_query_without_fp_costs_no_io(self):
        d = FilteredDictionary(BloomFilter(100, 0.001, seed=1))
        d.put("k", "v")
        d.get("definitely-absent")
        # Either 0 reads (filter said no) or 1 (it was an FP); with ε=0.001
        # a specific single key is almost surely filtered.
        assert d.stats.disk_reads <= 1

    def test_false_positive_detected_and_counted(self, small_keys):
        members, negatives = small_keys
        bloom = BloomFilter(len(members), 0.2, seed=2)
        d = FilteredDictionary(bloom)
        for key in members:
            d.put(key, key)
        for key in negatives:
            d.get(key)
        assert d.stats.false_positives > 0
        assert d.stats.disk_reads == d.stats.false_positives  # no member reads
        assert 0 < d.stats.wasted_read_rate < 1

    def test_adaptive_feedback_loop(self, small_keys):
        members, negatives = small_keys
        acf = AdaptiveCuckooFilter.for_capacity(len(members), 0.05, seed=3)
        d = FilteredDictionary(acf)
        for key in members:
            d.put(key, key)
        # First pass discovers FPs and adapts; second pass must be cleaner.
        for key in negatives:
            d.get(key)
        first = d.stats.false_positives
        d.stats.false_positives = 0
        d.stats.queries = 0
        for key in negatives:
            d.get(key)
        assert d.stats.false_positives < max(1, first)

    def test_remove(self):
        from repro.filters.quotient import QuotientFilter

        d = FilteredDictionary(QuotientFilter.for_capacity(10, 0.01))
        d.put("k", 1)
        d.remove("k")
        assert d.get("k") is None


class TestStaticVsAdaptiveAdversary:
    def test_static_filter_repeats_errors_adaptive_does_not(self, small_keys):
        """The §2.3 headline: replaying one discovered FP costs a static
        filter a wasted I/O every single time; an adaptive filter pays once."""
        members, negatives = small_keys
        bloom = BloomFilter(len(members), 0.1, seed=4)
        acf = AdaptiveCuckooFilter.for_capacity(len(members), 0.1, seed=4)
        d_static = FilteredDictionary(bloom)
        d_adaptive = FilteredDictionary(acf)
        for key in members:
            d_static.put(key, key)
            d_adaptive.put(key, key)

        fp_static = next((k for k in negatives if bloom.may_contain(k)), None)
        fp_adaptive = next((k for k in negatives if acf.may_contain(k)), None)
        if fp_static is None or fp_adaptive is None:
            pytest.skip("no false positive at this seed")

        for _ in range(50):
            d_static.get(fp_static)
            d_adaptive.get(fp_adaptive)
        assert d_static.stats.false_positives == 50
        assert d_adaptive.stats.false_positives <= 3
