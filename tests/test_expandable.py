"""Tests for the expandable filters (§2.2)."""

from __future__ import annotations

import pytest

from repro.core.errors import DeletionError, FilterFullError, NotExpandableError
from repro.expandable.aleph import AlephFilter
from repro.expandable.chaining import ChainedFilter, ScalableBloomFilter
from repro.expandable.infinifilter import InfiniFilter
from repro.expandable.naive import NaiveExpandableQuotientFilter
from repro.expandable.taffy import TaffyCuckooFilter
from tests.conftest import measured_fpr
from repro.workloads.synthetic import disjoint_key_sets


def _grow_through_expansions(filt, n_keys: int) -> list:
    """Insert n_keys with autogrow; returns the inserted keys."""
    members, _ = disjoint_key_sets(n_keys, 1, seed=21)
    for key in members:
        filt.insert_autogrow(key)
    return members


class TestChained:
    def test_grows_and_keeps_members(self):
        cf = ChainedFilter(64, 0.01, seed=1)
        members = _grow_through_expansions(cf, 500)
        assert cf.n_links >= 7
        assert all(cf.may_contain(k) for k in members)

    def test_query_cost_grows_with_links(self):
        cf = ChainedFilter(32, 0.001, seed=1)
        _grow_through_expansions(cf, 400)
        assert cf.query_cost("some-negative-key") == cf.n_links

    def test_capacity_tracks_links(self):
        cf = ChainedFilter(32, 0.01)
        cf.expand()
        assert cf.capacity == 64


class TestScalable:
    def test_fpr_bounded_despite_growth(self):
        sbf = ScalableBloomFilter(128, 0.01, seed=2)
        members, negatives = disjoint_key_sets(4000, 10_000, seed=3)
        for key in members:
            sbf.insert_autogrow(key)
        assert all(sbf.may_contain(k) for k in members)
        assert measured_fpr(sbf, negatives) <= 0.02  # ≤ ε despite 5+ links

    def test_log_many_links(self):
        sbf = ScalableBloomFilter(128, 0.01, seed=2)
        _grow_through_expansions(sbf, 4000)
        assert sbf.n_links <= 7  # geometric growth → log link count


class TestNaiveExpandable:
    def test_expansion_preserves_members(self):
        nf = NaiveExpandableQuotientFilter(7, 8, seed=4)
        members = _grow_through_expansions(nf, 800)
        assert all(nf.may_contain(k) for k in members)
        assert nf.n_expansions >= 2

    def test_fpr_doubles_per_expansion(self):
        nf = NaiveExpandableQuotientFilter(7, 8, seed=4)
        r0 = nf.remainder_bits
        nf.expand()
        nf.expand()
        assert nf.remainder_bits == r0 - 2

    def test_runs_out_of_bits(self):
        nf = NaiveExpandableQuotientFilter(4, 2, seed=4)
        nf.expand()
        with pytest.raises(NotExpandableError):
            nf.expand()
        assert not nf.can_expand

    def test_deletes_supported(self):
        nf = NaiveExpandableQuotientFilter(6, 8, seed=5)
        nf.insert("x")
        nf.expand()
        nf.delete("x")
        assert not nf.may_contain("x")


class TestTaffy:
    def test_expansion_preserves_members(self):
        tf = TaffyCuckooFilter(4, 10, seed=6)
        members = _grow_through_expansions(tf, 1000)
        assert tf.n_expansions >= 3
        assert all(tf.may_contain(k) for k in members)

    def test_fpr_stays_stable(self):
        members, negatives = disjoint_key_sets(4000, 10_000, seed=7)
        tf = TaffyCuckooFilter(4, 12, seed=8)
        before = None
        for i, key in enumerate(members):
            tf.insert_autogrow(key)
            if i == 200:
                before = measured_fpr(tf, negatives[:3000])
        after = measured_fpr(tf, negatives[:3000])
        # Stable: within a small constant factor despite many doublings
        # (the naive filter would have degraded by 2^expansions).
        assert after <= max(4 * (before + 1e-4), 0.02)

    def test_no_deletes(self):
        tf = TaffyCuckooFilter(4, 10)
        tf.insert("x")
        with pytest.raises(NotImplementedError):
            tf.delete("x")

    def test_universe_bound(self):
        tf = TaffyCuckooFilter(2, 2, seed=9)
        tf.insert("a")
        tf.expand()
        tf.expand()
        with pytest.raises(NotExpandableError):
            tf.expand()


class TestInfiniFilter:
    def test_expansion_preserves_members_and_deletes(self):
        inf = InfiniFilter(4, 8, seed=10)
        members = _grow_through_expansions(inf, 1200)
        assert all(inf.may_contain(k) for k in members)
        inf.delete(members[0])
        inf.delete(members[-1])

    def test_unbounded_expansion_via_voids(self):
        inf = InfiniFilter(3, 2, seed=11)
        for _ in range(40):
            pass
        members = _grow_through_expansions(inf, 300)
        # Fingerprint budget (2 bits) long exhausted: voids must exist.
        assert inf.n_expansions > 2
        assert inf.n_void_entries > 0
        assert all(inf.may_contain(k) for k in members)

    def test_query_cost_grows_past_budget(self):
        inf = InfiniFilter(3, 2, seed=12)
        _grow_through_expansions(inf, 400)
        assert inf.query_cost("whatever") > 1

    def test_delete_unknown_raises(self):
        inf = InfiniFilter(4, 8, seed=13)
        inf.insert("a")
        with pytest.raises(DeletionError):
            inf.delete("definitely-not-there")


class TestAleph:
    def test_expansion_preserves_members(self):
        al = AlephFilter(3, 4, seed=14)
        members = _grow_through_expansions(al, 400)
        assert al.n_expansions > 2
        assert all(al.may_contain(k) for k in members)

    def test_query_cost_constant(self):
        al = AlephFilter(3, 4, seed=15)
        _grow_through_expansions(al, 400)
        assert al.query_cost("anything") == 1

    def test_void_fraction_bounded(self):
        # With a realistic fingerprint budget (8 bits) voids never appear
        # over ~6 doublings, so the void fraction stays negligible.
        al = AlephFilter(3, 8, seed=16)
        _grow_through_expansions(al, 2000)
        assert al.n_void_entries / len(al) < 0.05

    def test_deletes(self):
        al = AlephFilter(4, 8, seed=17)
        al.insert("x")
        al.expand()
        al.delete("x")
        assert not al.may_contain("x")


class TestFullSignalling:
    def test_insert_raises_when_full_without_autogrow(self):
        tf = TaffyCuckooFilter(2, 10, seed=18)
        with pytest.raises(FilterFullError):
            for i in range(1000):
                tf.insert(i)
