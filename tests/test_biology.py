"""Tests for the computational-biology applications (§3.2)."""

from __future__ import annotations

import pytest

from repro.apps.debruijn import (
    CascadingBloomDeBruijn,
    FilterBackedDeBruijn,
    neighbours,
)
from repro.apps.kmers import KmerCounter
from repro.apps.mantis import MantisIndex
from repro.apps.sbt import SequenceBloomTree
from repro.workloads.dna import (
    extract_kmers,
    int_to_kmer,
    kmer_to_int,
    random_genome,
    sequencing_experiments,
    sequencing_reads,
)

K = 11


@pytest.fixture(scope="module")
def genome():
    return random_genome(4000, seed=71)


@pytest.fixture(scope="module")
def kmer_set(genome):
    return set(extract_kmers(genome, K))


class TestDnaWorkloads:
    def test_kmer_int_round_trip(self):
        kmer = "ACGTACGTA"
        assert int_to_kmer(kmer_to_int(kmer), len(kmer)) == kmer

    def test_extract_kmers_count(self, genome):
        assert len(extract_kmers(genome, K)) == len(genome) - K + 1

    def test_reads_come_from_genome(self, genome):
        for read in sequencing_reads(genome, 20, 50, seed=1):
            assert read in genome

    def test_experiments_share_core(self):
        exps = sequencing_experiments(4, 2000, K, shared_fraction=0.5, seed=2)
        core = exps[0] & exps[1] & exps[2] & exps[3]
        assert len(core) > 500


class TestKmerCounter:
    def test_approximate_counts_never_undercount(self, genome):
        counter = KmerCounter(K, 8000, exact=False, seed=3)
        counter.add_sequence(genome)
        truth: dict[str, int] = {}
        for kmer in extract_kmers(genome, K):
            truth[kmer] = truth.get(kmer, 0) + 1
        assert all(counter.count(k) >= c for k, c in truth.items())

    def test_exact_mode_is_exact(self, genome):
        counter = KmerCounter(K, 8000, exact=True, seed=3)
        counter.add_sequence(genome)
        truth: dict[str, int] = {}
        for kmer in extract_kmers(genome, K):
            truth[kmer] = truth.get(kmer, 0) + 1
        assert all(counter.count(k) == c for k, c in truth.items())
        absent = "A" * K
        if absent not in truth:
            assert counter.count(absent) == 0

    def test_reads_interface(self, genome):
        counter = KmerCounter(K, 20000, seed=4)
        reads = sequencing_reads(genome, 50, 100, seed=5)
        added = counter.add_reads(reads)
        assert added == 50 * (100 - K + 1)
        assert counter.n_kmers_total == added

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            KmerCounter(0, 100)
        with pytest.raises(ValueError):
            KmerCounter(40, 100)


class TestDeBruijn:
    def test_neighbours_shape(self):
        n = neighbours("ACGT")
        assert len(n) == 8
        assert all(len(x) == 4 for x in n)

    def test_true_kmers_present(self, kmer_set):
        graph = FilterBackedDeBruijn(kmer_set, epsilon=0.05, seed=6)
        assert all(graph.contains(k) for k in list(kmer_set)[:300])

    def test_critical_fps_few(self, kmer_set):
        graph = FilterBackedDeBruijn(kmer_set, epsilon=0.05, seed=6)
        # Pell et al.: at reasonable ε the graph structure barely changes;
        # critical FPs are a small fraction of true k-mers.
        assert graph.critical_fraction < 0.5

    def test_exactness_of_navigation(self, kmer_set):
        graph = FilterBackedDeBruijn(kmer_set, epsilon=0.05, seed=6)
        # Every neighbour reported from a true k-mer must be a true k-mer.
        for kmer in list(kmer_set)[:200]:
            for succ in graph.successors(kmer):
                assert succ in kmer_set

    def test_walk_follows_genome(self, genome, kmer_set):
        graph = FilterBackedDeBruijn(kmer_set, epsilon=0.05, seed=6)
        start = genome[:K]
        path = graph.walk(start, max_steps=50)
        assert len(path) > 1
        assert all(p in kmer_set for p in path)

    def test_cascading_matches_exact(self, kmer_set):
        exact = FilterBackedDeBruijn(kmer_set, epsilon=0.05, seed=7)
        cascade = CascadingBloomDeBruijn(kmer_set, epsilon=0.05, seed=7)
        probe = list(kmer_set)[:200]
        for kmer in probe:
            assert cascade.contains(kmer) == exact.contains(kmer)

    def test_cascade_smaller_than_exact_table(self, kmer_set):
        exact = FilterBackedDeBruijn(kmer_set, epsilon=0.2, seed=8)
        cascade = CascadingBloomDeBruijn(kmer_set, epsilon=0.2, seed=8)
        if exact.n_critical > 50:
            cascade_cfp_bits = cascade.size_in_bits - cascade._b1.size_in_bits
            assert cascade_cfp_bits < exact.critical_table_bits

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            FilterBackedDeBruijn([])


class TestSequenceSearch:
    @pytest.fixture(scope="class")
    def experiments(self):
        return sequencing_experiments(8, 3000, K, shared_fraction=0.3, seed=81)

    def test_sbt_finds_the_right_experiment(self, experiments):
        sbt = SequenceBloomTree(experiments, epsilon=0.01, seed=9)
        query = list(experiments[3])[:80]
        assert 3 in sbt.query(query, theta=0.8)

    def test_sbt_prunes_subtrees(self, experiments):
        sbt = SequenceBloomTree(experiments, epsilon=0.01, seed=9)
        query = list(experiments[0])[:80]
        sbt.query(query, theta=0.9)
        # Visiting every node would cost 2·8−1 = 15; pruning must do better.
        assert sbt.last_query_nodes < 15

    def test_mantis_exact_results(self, experiments):
        mantis = MantisIndex(experiments, seed=10)
        # Ground truth by brute force.
        query = list(experiments[5])[:60]
        expected = [
            e
            for e, kmers in enumerate(experiments)
            if sum(1 for q in query if q in kmers) >= int(0.8 * len(query))
        ]
        got = mantis.query(query, theta=0.8)
        import math

        expected = [
            e
            for e, kmers in enumerate(experiments)
            if sum(1 for q in query if q in kmers) >= math.ceil(0.8 * len(query))
        ]
        assert got == expected

    def test_mantis_experiments_of_exact(self, experiments):
        mantis = MantisIndex(experiments, seed=10)
        some_kmer = next(iter(experiments[2]))
        expected = tuple(
            e for e, kmers in enumerate(experiments) if some_kmer in kmers
        )
        assert mantis.experiments_of(some_kmer) == expected
        assert mantis.experiments_of("A" * K) == () or "A" * K in set().union(
            *experiments
        )

    def test_mantis_vs_sbt_claims(self, experiments):
        """§3.2: Mantis is exact; SBT is approximate (may return extras)."""
        mantis = MantisIndex(experiments, seed=11)
        sbt = SequenceBloomTree(experiments, epsilon=0.2, seed=11)
        query = list(experiments[1])[:60]
        exact = set(mantis.query(query, theta=0.75))
        approx = set(sbt.query(query, theta=0.75))
        assert exact <= approx  # SBT never misses, may add false experiments

    def test_colour_classes_deduplicated(self, experiments):
        mantis = MantisIndex(experiments, seed=10)
        assert mantis.n_colour_classes <= mantis.n_kmers
        assert mantis.n_colour_classes >= 1
