"""Extended LSM tests: tombstone deletes, GRF mode, crate filter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.lsm import LSMConfig, LSMTree, TOMBSTONE
from repro.core.errors import DeletionError, FilterFullError
from repro.filters.crate import CrateFilter
from repro.rangefilters.snarf import SNARF
from tests.conftest import measured_fpr


def _fill(tree: LSMTree, n: int, seed: int = 0) -> dict[int, int]:
    rng = np.random.default_rng(seed)
    keys = rng.choice(1 << 30, size=n, replace=False)
    data = {}
    for i, key in enumerate(int(k) for k in keys):
        tree.put(key, i)
        data[key] = i
    return data


class TestTombstones:
    @pytest.mark.parametrize("compaction", ["leveling", "tiering", "lazy-leveling"])
    def test_delete_hides_key(self, compaction):
        tree = LSMTree(LSMConfig(compaction=compaction, memtable_entries=16))
        data = _fill(tree, 300, seed=1)
        victims = list(data)[::7]
        for key in victims:
            tree.delete(key)
        tree.flush()
        for key in victims:
            assert tree.get(key, default="gone") == "gone"
        survivors = [k for k in data if k not in set(victims)]
        for key in survivors[::11]:
            assert tree.get(key) == data[key]

    def test_delete_then_reinsert(self):
        tree = LSMTree(LSMConfig(memtable_entries=8))
        tree.put(42, "v1")
        tree.delete(42)
        tree.put(42, "v2")
        tree.flush()
        assert tree.get(42) == "v2"

    def test_range_query_excludes_tombstoned(self):
        tree = LSMTree(LSMConfig(memtable_entries=16))
        for key in range(100, 200):
            tree.put(key, key)
        for key in range(150, 160):
            tree.delete(key)
        tree.flush()
        result = tree.range_query(100, 199)
        assert set(result) == set(range(100, 150)) | set(range(160, 200))

    def test_tombstones_dropped_at_bottom(self):
        tree = LSMTree(
            LSMConfig(compaction="leveling", memtable_entries=8, size_ratio=2)
        )
        for key in range(64):
            tree.put(key, key)
        for key in range(64):
            tree.delete(key)
        # Enough extra churn to push everything through the bottom merge.
        for key in range(1000, 1400):
            tree.put(key, key)
        on_disk_values = [
            v for level in tree._levels for run in level for v in run.values
        ]
        assert sum(1 for v in on_disk_values if v is TOMBSTONE) < 64


class TestGlobalRangeFilter:
    def _factory(self, keys):
        return SNARF(keys, key_bits=30, multiplier=32, seed=3)

    def test_results_identical_with_grf(self):
        base = LSMTree(LSMConfig(compaction="tiering", memtable_entries=32))
        grf = LSMTree(
            LSMConfig(
                compaction="tiering",
                memtable_entries=32,
                global_range_filter_factory=self._factory,
            )
        )
        data = _fill(base, 800, seed=4)
        _fill(grf, 800, seed=4)
        rng = np.random.default_rng(5)
        for lo in rng.integers(0, (1 << 30) - 512, size=100):
            lo = int(lo)
            assert grf.range_query(lo, lo + 511) == base.range_query(lo, lo + 511)

    def test_grf_cuts_range_ios(self):
        base = LSMTree(LSMConfig(compaction="tiering", memtable_entries=32))
        grf = LSMTree(
            LSMConfig(
                compaction="tiering",
                memtable_entries=32,
                global_range_filter_factory=self._factory,
            )
        )
        _fill(base, 800, seed=4)
        _fill(grf, 800, seed=4)
        rng = np.random.default_rng(6)
        for lo in rng.integers(0, (1 << 30) - 64, size=200):
            lo = int(lo)
            base.range_query(lo, lo + 63)
            grf.range_query(lo, lo + 63)
        assert grf.stats.range_ios < base.stats.range_ios


class TestCrateFilter:
    def test_no_false_negatives(self, medium_keys):
        members, _ = medium_keys
        crate = CrateFilter.for_capacity(len(members), 0.01, seed=7)
        for key in members:
            crate.insert(key)
        assert all(crate.may_contain(k) for k in members)

    def test_fpr(self, medium_keys):
        members, negatives = medium_keys
        crate = CrateFilter.for_capacity(len(members), 0.01, seed=7)
        for key in members:
            crate.insert(key)
        assert measured_fpr(crate, negatives) <= 0.02

    def test_constant_accesses(self, medium_keys):
        members, _ = medium_keys
        crate = CrateFilter.for_capacity(len(members), 0.01, seed=7)
        for key in members:
            crate.insert(key)
        assert max(crate.max_access(k) for k in members[:500]) <= 3

    def test_delete_restores_invariant(self):
        # Fill one bucket past its primary slots so the chain is used, then
        # delete from the primary and verify chained entries stay findable.
        crate = CrateFilter(4, 12, seed=8)
        keys = [k for k in range(4000) if crate._locate(k)[0] == 0][:12]
        for key in keys:
            crate.insert(key)
        crate.delete(keys[0])
        for key in keys[1:]:
            assert crate.may_contain(key)

    def test_chain_exhaustion_raises(self):
        crate = CrateFilter(1, 12, seed=9)
        with pytest.raises(FilterFullError):
            for i in range(1000):
                crate.insert(i)

    def test_delete_unknown_raises(self):
        crate = CrateFilter.for_capacity(100, 0.01, seed=10)
        crate.insert("a")
        with pytest.raises(DeletionError):
            crate.delete("b")

    def test_registry_constructible(self):
        from repro.core.registry import make_filter

        crate = make_filter("crate", capacity=100, epsilon=0.01, seed=1)
        crate.insert("x")
        assert crate.may_contain("x")
        crate.delete("x")
        assert not crate.may_contain("x")
