"""Shared fixtures and pinned hypothesis profiles for the test suite.

Hypothesis profiles (selected with ``REPRO_HYPOTHESIS_PROFILE``, one env
var — no other switches):

* ``default`` — what local ``pytest`` runs use: modest example counts,
  no deadline (simulated-I/O tests are CPU-bound and deadline flake is
  noise, not signal).
* ``ci`` — what CI exports: derandomized, so a red CI run replays
  *identically* with ``REPRO_HYPOTHESIS_PROFILE=ci pytest <failing
  test>`` — the printed falsifying example is the whole repro.
* ``thorough`` — 10× examples for manual deep runs.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.workloads.synthetic import disjoint_key_sets

settings.register_profile("default", max_examples=50, deadline=None)
settings.register_profile(
    "ci", max_examples=50, deadline=None, derandomize=True, print_blob=True
)
settings.register_profile("thorough", max_examples=500, deadline=None)
settings.load_profile(os.environ.get("REPRO_HYPOTHESIS_PROFILE", "default"))


@pytest.fixture(scope="session")
def small_keys():
    """500 member keys + 2000 disjoint negatives (session-cached)."""
    return disjoint_key_sets(500, 2000, seed=7)


@pytest.fixture(scope="session")
def medium_keys():
    """4096 member keys + 20000 disjoint negatives (session-cached)."""
    return disjoint_key_sets(4096, 20000, seed=11)


def measured_fpr(filt, negatives) -> float:
    """Fraction of negatives a filter wrongly accepts."""
    hits = sum(1 for key in negatives if filt.may_contain(key))
    return hits / len(negatives)
