"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.workloads.synthetic import disjoint_key_sets


@pytest.fixture(scope="session")
def small_keys():
    """500 member keys + 2000 disjoint negatives (session-cached)."""
    return disjoint_key_sets(500, 2000, seed=7)


@pytest.fixture(scope="session")
def medium_keys():
    """4096 member keys + 20000 disjoint negatives (session-cached)."""
    return disjoint_key_sets(4096, 20000, seed=11)


def measured_fpr(filt, negatives) -> float:
    """Fraction of negatives a filter wrongly accepts."""
    hits = sum(1 for key in negatives if filt.may_contain(key))
    return hits / len(negatives)
