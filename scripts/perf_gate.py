#!/usr/bin/env python3
"""CI performance gate for the batch-kernel throughput snapshot.

Compares the snapshot written by ``bench_t4_throughput.py::
test_t4_batch_vs_scalar`` (``benchmarks/bench_t4_batch.json`` by
default) against the committed baseline ``benchmarks/BENCH_baseline.json``
with a relative tolerance.

Two metrics per family:

* ``speedup`` (batch/scalar ratio) — the primary gate.  It is a ratio of
  two timings on the *same* machine, so it transfers across hardware and
  noisy shared runners far better than absolute ops/s.
* ``batch_ops_s`` — reported for context and checked with the same
  tolerance, but a regression here alone is always warn-only (absolute
  throughput on a shared runner is not comparable to the baseline host).

Default mode is **warn-only** (exit 0 with warnings printed) because CI
runs on shared runners; pass ``--strict`` to turn speedup regressions
into a nonzero exit.  See docs/performance.md for the baseline-refresh
workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(_HERE)
DEFAULT_BASELINE = os.path.join(_REPO, "benchmarks", "BENCH_baseline.json")
DEFAULT_SNAPSHOT = os.path.join(_REPO, "benchmarks", "bench_t4_batch.json")
DEFAULT_RESHARD = os.path.join(_REPO, "benchmarks", "bench_r3_reshard.json")


def compare(baseline: dict, snapshot: dict, tolerance: float):
    """Yield (family, metric, current, floor, ok) rows."""
    base_families = baseline.get("families", {})
    snap_families = snapshot.get("families", {})
    for family in sorted(base_families):
        base = base_families[family]
        snap = snap_families.get(family)
        if snap is None:
            yield family, "missing", None, None, False
            continue
        for metric in ("speedup", "batch_ops_s"):
            floor = base[metric] * (1.0 - tolerance)
            current = snap[metric]
            yield family, metric, current, floor, current >= floor


def check_reshard(path: str, floor: float = 0.7) -> list[str]:
    """Warn-only check of the online-reshard snapshot, if present.

    The R3 bench (``bench_r3_reshard.py``) writes steady-state and
    during-migration goodput for identical storms; a migration that
    keeps less than *floor* of steady goodput means background batches
    are stealing foreground capacity.  Missing snapshot = skipped
    (the bench is optional in most CI lanes).
    """
    try:
        with open(path) as fh:
            snap = json.load(fh)
    except OSError:
        return []
    except ValueError as exc:
        return [f"reshard snapshot {path} unreadable: {exc}"]
    warnings = []
    steady = snap.get("steady", {}).get("goodput")
    migration = snap.get("migration", {}).get("goodput")
    if steady is None or migration is None:
        return [f"reshard snapshot {path} missing goodput fields"]
    print(f"perf-gate: reshard goodput steady {steady:.3f} -> "
          f"migration {migration:.3f} (floor {floor:.0%} of steady)")
    if migration < floor * steady:
        warnings.append(
            f"migration goodput {migration:.3f} < {floor:.0%} of steady "
            f"{steady:.3f} — background resharding is starving traffic"
        )
    if not snap.get("migration", {}).get("completed", True):
        warnings.append("reshard bench migration did not complete")
    return warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--snapshot", default=DEFAULT_SNAPSHOT)
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed relative regression before a metric trips "
             "(default 0.5 = current may fall to 50%% of baseline)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on speedup regressions and reshard goodput "
             "warnings (default: warn only)",
    )
    parser.add_argument(
        "--reshard-snapshot", default=DEFAULT_RESHARD,
        help="bench_r3_reshard.py snapshot; goodput checks warn by "
             "default (fail under --strict) and are skipped when the "
             "file is absent",
    )
    args = parser.parse_args(argv)

    # Independent of the t4 snapshot, so it runs (and prints) even in CI
    # lanes that never produced the throughput bench.  The goodput gate
    # is a same-run ratio (migration/steady on one machine), so unlike
    # absolute throughput it is shared-runner-safe to enforce strictly.
    reshard_warnings = check_reshard(args.reshard_snapshot)
    label = "FAIL" if args.strict else "WARN"
    for warning in reshard_warnings:
        print(f"perf-gate: {label} (reshard) — {warning}")

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf-gate: cannot read baseline {args.baseline}: {exc}")
        return 1
    try:
        with open(args.snapshot) as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf-gate: cannot read snapshot {args.snapshot}: {exc}")
        print("perf-gate: run the bench first: PYTHONPATH=src python -m pytest "
              "benchmarks/bench_t4_throughput.py::test_t4_batch_vs_scalar -s")
        return 1

    failures = []
    print(f"perf-gate: tolerance {args.tolerance:.0%}, "
          f"baseline {os.path.relpath(args.baseline, _REPO)}")
    print(f"{'family':<22}{'metric':<14}{'current':>12}{'floor':>12}  status")
    for family, metric, current, floor, ok in compare(
        baseline, snapshot, args.tolerance
    ):
        if metric == "missing":
            print(f"{family:<22}{metric:<14}{'-':>12}{'-':>12}  MISSING")
            failures.append((family, metric))
            continue
        status = "ok" if ok else "REGRESSION"
        print(f"{family:<22}{metric:<14}{current:>12.2f}{floor:>12.2f}  {status}")
        if not ok and metric == "speedup":
            failures.append((family, metric))

    if failures:
        names = ", ".join(f"{f}:{m}" for f, m in failures)
        if args.strict:
            print(f"perf-gate: FAIL — {names}")
            return 1
        print(f"perf-gate: WARN (shared-runner mode, not failing) — {names}")
    else:
        print("perf-gate: all families within tolerance")
    if args.strict and reshard_warnings:
        print(f"perf-gate: FAIL — {len(reshard_warnings)} reshard goodput "
              "check(s) failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
