#!/usr/bin/env python3
"""CI performance gate for the batch-kernel throughput snapshot.

Compares the snapshot written by ``bench_t4_throughput.py::
test_t4_batch_vs_scalar`` (``benchmarks/bench_t4_batch.json`` by
default) against the committed baseline ``benchmarks/BENCH_baseline.json``
with a relative tolerance.

Two metrics per family:

* ``speedup`` (batch/scalar ratio) — the primary gate.  It is a ratio of
  two timings on the *same* machine, so it transfers across hardware and
  noisy shared runners far better than absolute ops/s.
* ``batch_ops_s`` — reported for context and checked with the same
  tolerance, but a regression here alone is always warn-only (absolute
  throughput on a shared runner is not comparable to the baseline host).

Default mode is **warn-only** (exit 0 with warnings printed) because CI
runs on shared runners; pass ``--strict`` to turn speedup regressions
into a nonzero exit.  See docs/performance.md for the baseline-refresh
workflow.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_REPO = os.path.dirname(_HERE)
DEFAULT_BASELINE = os.path.join(_REPO, "benchmarks", "BENCH_baseline.json")
DEFAULT_SNAPSHOT = os.path.join(_REPO, "benchmarks", "bench_t4_batch.json")
DEFAULT_RESHARD = os.path.join(_REPO, "benchmarks", "bench_r3_reshard.json")
DEFAULT_TENANT = os.path.join(_REPO, "benchmarks", "bench_r5_tenant.json")


def compare(baseline: dict, snapshot: dict, tolerance: float):
    """Yield (family, metric, current, floor, ok) rows."""
    base_families = baseline.get("families", {})
    snap_families = snapshot.get("families", {})
    for family in sorted(base_families):
        base = base_families[family]
        snap = snap_families.get(family)
        if snap is None:
            yield family, "missing", None, None, False
            continue
        for metric in ("speedup", "batch_ops_s"):
            floor = base[metric] * (1.0 - tolerance)
            current = snap[metric]
            yield family, metric, current, floor, current >= floor


def check_reshard(path: str, floor: float = 0.7) -> list[str]:
    """Warn-only check of the online-reshard snapshot, if present.

    The R3 bench (``bench_r3_reshard.py``) writes steady-state and
    during-migration goodput for identical storms; a migration that
    keeps less than *floor* of steady goodput means background batches
    are stealing foreground capacity.  Missing snapshot = skipped
    (the bench is optional in most CI lanes).
    """
    try:
        with open(path) as fh:
            snap = json.load(fh)
    except OSError:
        return []
    except ValueError as exc:
        return [f"reshard snapshot {path} unreadable: {exc}"]
    warnings = []
    steady = snap.get("steady", {}).get("goodput")
    migration = snap.get("migration", {}).get("goodput")
    if steady is None or migration is None:
        return [f"reshard snapshot {path} missing goodput fields"]
    print(f"perf-gate: reshard goodput steady {steady:.3f} -> "
          f"migration {migration:.3f} (floor {floor:.0%} of steady)")
    if migration < floor * steady:
        warnings.append(
            f"migration goodput {migration:.3f} < {floor:.0%} of steady "
            f"{steady:.3f} — background resharding is starving traffic"
        )
    if not snap.get("migration", {}).get("completed", True):
        warnings.append("reshard bench migration did not complete")
    return warnings


def check_tenant(path: str, ratio_ceiling: float = 0.2) -> list[str]:
    """Warn-only check of the tenant-router snapshot, if present.

    The R5 bench (``bench_r5_tenant.py``) records router-vs-flat probe
    counts per fleet size plus a same-storm goodput comparison.  Gates:

    * probe ratio at the largest measured fleet (and specifically at any
      fleet >= 10k tenants) must stay <= *ratio_ceiling* — the Bloofi
      descent must keep beating the O(N) fan-out by 5x;
    * zero false negatives and zero router/flat divergences anywhere —
      probe savings must never change an answer;
    * router goodput >= flat goodput under the identical storm.

    Same-run ratios on one machine, so shared-runner-safe to enforce
    strictly.  Missing snapshot = skipped.
    """
    try:
        with open(path) as fh:
            snap = json.load(fh)
    except OSError:
        return []
    except ValueError as exc:
        return [f"tenant snapshot {path} unreadable: {exc}"]
    warnings = []
    series = snap.get("series", [])
    if not series:
        return [f"tenant snapshot {path} has no probe series"]
    for row in series:
        n = row.get("n_tenants", 0)
        ratio = row.get("ratio")
        if ratio is None:
            warnings.append(f"tenant series row for n={n} missing ratio")
            continue
        if row.get("false_negatives", 1) != 0:
            warnings.append(f"tenant router false negatives at n={n}")
        if row.get("divergences", 1) != 0:
            warnings.append(f"router/flat answer divergence at n={n}")
        if (n >= 10_000 or row is series[-1]) and ratio > ratio_ceiling:
            warnings.append(
                f"router probe ratio {ratio:.4f} at {n} tenants exceeds "
                f"{ratio_ceiling:.0%} of flat fan-out"
            )
    top = series[-1]
    print(f"perf-gate: tenant probe ratio {top.get('ratio', float('nan')):.4f} "
          f"at {top.get('n_tenants')} tenants "
          f"(ceiling {ratio_ceiling:.0%} of flat fan-out)")
    goodput = snap.get("goodput", {})
    router_g = goodput.get("router", {}).get("goodput")
    flat_g = goodput.get("flat", {}).get("goodput")
    if router_g is not None and flat_g is not None:
        print(f"perf-gate: tenant goodput router {router_g:.3f} vs "
              f"flat {flat_g:.3f} under the identical storm")
        if router_g < flat_g:
            warnings.append(
                f"router goodput {router_g:.3f} below flat fan-out "
                f"{flat_g:.3f} — the descent is costing more than it saves"
            )
    return warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", default=DEFAULT_BASELINE)
    parser.add_argument("--snapshot", default=DEFAULT_SNAPSHOT)
    parser.add_argument(
        "--tolerance", type=float, default=0.5,
        help="allowed relative regression before a metric trips "
             "(default 0.5 = current may fall to 50%% of baseline)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit nonzero on speedup regressions and reshard goodput "
             "warnings (default: warn only)",
    )
    parser.add_argument(
        "--reshard-snapshot", default=DEFAULT_RESHARD,
        help="bench_r3_reshard.py snapshot; goodput checks warn by "
             "default (fail under --strict) and are skipped when the "
             "file is absent",
    )
    parser.add_argument(
        "--tenant-snapshot", default=DEFAULT_TENANT,
        help="bench_r5_tenant.py snapshot; probe-ratio and goodput "
             "checks warn by default (fail under --strict) and are "
             "skipped when the file is absent",
    )
    parser.add_argument(
        "--tenant-ratio-ceiling", type=float, default=0.2,
        help="max allowed router/flat probe ratio at >= 10k tenants "
             "(default 0.2 = the router must probe at most a fifth of "
             "what flat fan-out probes)",
    )
    args = parser.parse_args(argv)

    # Independent of the t4 snapshot, so it runs (and prints) even in CI
    # lanes that never produced the throughput bench.  The goodput gate
    # is a same-run ratio (migration/steady on one machine), so unlike
    # absolute throughput it is shared-runner-safe to enforce strictly.
    reshard_warnings = check_reshard(args.reshard_snapshot)
    label = "FAIL" if args.strict else "WARN"
    for warning in reshard_warnings:
        print(f"perf-gate: {label} (reshard) — {warning}")
    tenant_warnings = check_tenant(
        args.tenant_snapshot, args.tenant_ratio_ceiling
    )
    for warning in tenant_warnings:
        print(f"perf-gate: {label} (tenant) — {warning}")

    try:
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf-gate: cannot read baseline {args.baseline}: {exc}")
        return 1
    try:
        with open(args.snapshot) as fh:
            snapshot = json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf-gate: cannot read snapshot {args.snapshot}: {exc}")
        print("perf-gate: run the bench first: PYTHONPATH=src python -m pytest "
              "benchmarks/bench_t4_throughput.py::test_t4_batch_vs_scalar -s")
        return 1

    failures = []
    print(f"perf-gate: tolerance {args.tolerance:.0%}, "
          f"baseline {os.path.relpath(args.baseline, _REPO)}")
    print(f"{'family':<22}{'metric':<14}{'current':>12}{'floor':>12}  status")
    for family, metric, current, floor, ok in compare(
        baseline, snapshot, args.tolerance
    ):
        if metric == "missing":
            print(f"{family:<22}{metric:<14}{'-':>12}{'-':>12}  MISSING")
            failures.append((family, metric))
            continue
        status = "ok" if ok else "REGRESSION"
        print(f"{family:<22}{metric:<14}{current:>12.2f}{floor:>12.2f}  {status}")
        if not ok and metric == "speedup":
            failures.append((family, metric))

    if failures:
        names = ", ".join(f"{f}:{m}" for f, m in failures)
        if args.strict:
            print(f"perf-gate: FAIL — {names}")
            return 1
        print(f"perf-gate: WARN (shared-runner mode, not failing) — {names}")
    else:
        print("perf-gate: all families within tolerance")
    if args.strict and reshard_warnings:
        print(f"perf-gate: FAIL — {len(reshard_warnings)} reshard goodput "
              "check(s) failed")
        return 1
    if args.strict and tenant_warnings:
        print(f"perf-gate: FAIL — {len(tenant_warnings)} tenant router "
              "check(s) failed")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
